package trace

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"k2/internal/sim"
)

func TestEmitAndOrder(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, 16)
	e.At(sim.Time(time.Millisecond), func() { b.Emit(Boot, "first") })
	e.At(sim.Time(2*time.Millisecond), func() { b.Emit(DSM, "fault on %d", 42) })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	evs := b.Events()
	if len(evs) != 2 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Msg != "first" || evs[1].Msg != "fault on 42" {
		t.Fatalf("events = %v", evs)
	}
	if evs[0].At != sim.Time(time.Millisecond) {
		t.Fatalf("timestamp = %v", evs[0].At)
	}
	if evs[0].Kind != Boot || evs[1].Kind != DSM {
		t.Fatal("kinds wrong")
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, 4)
	for i := 0; i < 10; i++ {
		b.Emit(User, "e%d", i)
	}
	evs := b.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		want := fmt.Sprintf("e%d", 6+i)
		if ev.Msg != want {
			t.Fatalf("evs[%d] = %q, want %q", i, ev.Msg, want)
		}
	}
	if b.Counts[User] != 10 {
		t.Fatalf("count = %d, want 10 (including overwritten)", b.Counts[User])
	}
}

func TestEnableOnly(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, 8)
	b.EnableOnly(DSM, Sched)
	b.Emit(DSM, "keep")
	b.Emit(IRQ, "drop")
	b.Emit(Sched, "keep")
	if b.Len() != 2 {
		t.Fatalf("len = %d", b.Len())
	}
	if b.Counts[IRQ] != 0 {
		t.Fatal("disabled kind counted")
	}
	if !b.Enabled(DSM) || b.Enabled(IRQ) {
		t.Fatal("enable flags wrong")
	}
}

func TestFilterAndDump(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, 8)
	b.Emit(DSM, "a")
	b.Emit(IRQ, "b")
	b.Emit(DSM, "c")
	got := b.Filter(DSM)
	if len(got) != 2 || got[0].Msg != "a" || got[1].Msg != "c" {
		t.Fatalf("filter = %v", got)
	}
	var sb strings.Builder
	if err := b.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"dsm", "irq", "a", "b", "c", "totals"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, name := range Kinds() {
		k, err := ParseKind(name)
		if err != nil {
			t.Fatal(err)
		}
		if k.String() != name {
			t.Fatalf("round trip %q -> %v", name, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("parsed bogus kind")
	}
}

func TestNilBufferIsSafe(t *testing.T) {
	var b *Buffer
	b.Emit(User, "into the void") // must not panic
}

// Property: after any number of emissions, Events() is sequence-ordered and
// retains exactly min(total, capacity) events, the newest ones.
func TestQuickRingRetention(t *testing.T) {
	f := func(nRaw uint8, capRaw uint8) bool {
		n := int(nRaw)
		capacity := int(capRaw)%32 + 1
		e := sim.NewEngine()
		b := New(e, capacity)
		for i := 0; i < n; i++ {
			b.Emit(User, "e%d", i)
		}
		evs := b.Events()
		want := n
		if want > capacity {
			want = capacity
		}
		if len(evs) != want {
			return false
		}
		for i := 1; i < len(evs); i++ {
			if evs[i].Seq != evs[i-1].Seq+1 {
				return false
			}
		}
		if len(evs) > 0 && evs[len(evs)-1].Msg != fmt.Sprintf("e%d", n-1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseKindErrors(t *testing.T) {
	for _, bad := range []string{"", "DSM", "dsm ", "kind(3)", "mailboxx"} {
		_, err := ParseKind(bad)
		if err == nil {
			t.Fatalf("ParseKind(%q) succeeded", bad)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("%q", bad)) {
			t.Fatalf("error %q does not name the bad input", err)
		}
	}
}

func TestRingExactCapacityBoundary(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, 4)
	for i := 0; i < 4; i++ {
		b.Emit(User, "e%d", i)
	}
	// Exactly full: nothing dropped yet.
	if evs := b.Events(); len(evs) != 4 || evs[0].Msg != "e0" {
		t.Fatalf("at capacity: %v", evs)
	}
	// One more evicts exactly the oldest.
	b.Emit(User, "e4")
	evs := b.Events()
	if len(evs) != 4 || evs[0].Msg != "e1" || evs[3].Msg != "e4" {
		t.Fatalf("after first wrap: %v", evs)
	}
}

func TestDumpAfterWrapReportsFullTotals(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, 2)
	for i := 0; i < 5; i++ {
		b.Emit(DSM, "e%d", i)
	}
	var sb strings.Builder
	if err := b.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "2 retained") || !strings.Contains(out, "dsm=5") {
		t.Fatalf("dump must report retained vs emitted totals:\n%s", out)
	}
	if strings.Contains(out, "e0") || !strings.Contains(out, "e4") {
		t.Fatalf("dump retained the wrong events:\n%s", out)
	}
}

// The Fault kind (injected faults + recovery actions) must round-trip like
// every other kind, and the name table must cover exactly the defined kinds
// so no kind renders as "kind(N)".
func TestFaultKindRegistered(t *testing.T) {
	if len(kindNames) != int(numKinds) {
		t.Fatalf("kindNames has %d entries for %d kinds", len(kindNames), int(numKinds))
	}
	if Fault.String() != "fault" {
		t.Fatalf("Fault renders as %q", Fault.String())
	}
	k, err := ParseKind("fault")
	if err != nil {
		t.Fatal(err)
	}
	if k != Fault {
		t.Fatalf("ParseKind(fault) = %v", k)
	}
}

// A sink must see every recorded event in emit order — including ones the
// ring later overwrites — and must not see suppressed kinds.
func TestSinkStreamsAllRecordedEvents(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, 4) // tiny ring: the sink must outlive overwrites
	b.Enable(Mem, false)
	var got []Event
	b.SetSink(func(ev Event) { got = append(got, ev) })
	for i := 0; i < 10; i++ {
		b.Emit(DSM, "fault %d", i)
		b.Emit(Mem, "suppressed %d", i)
	}
	if len(got) != 10 {
		t.Fatalf("sink saw %d events, want 10", len(got))
	}
	for i, ev := range got {
		if ev.Kind != DSM || ev.Seq != uint64(i+1) {
			t.Fatalf("event %d = %+v, want DSM seq %d", i, ev, i+1)
		}
	}
	if b.Len() != 4 {
		t.Fatalf("ring retained %d, want 4", b.Len())
	}
	b.SetSink(nil)
	b.Emit(DSM, "after removal")
	if len(got) != 10 {
		t.Fatal("sink still receiving after removal")
	}
}
