// Package trace is the kernel event tracer. The K2 prototype carried
// extensive debugging support (Table 2 lists 1.4 kSLoC of it) because
// understanding two cooperating kernels from their interleaved behavior is
// otherwise hopeless; this is the equivalent facility for the simulated
// system: a bounded ring of timestamped, kind-tagged events with per-kind
// enablement, counters, and text dumps.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"k2/internal/sim"
)

// Kind tags the subsystem an event belongs to.
type Kind int

const (
	// Boot: OS bring-up milestones.
	Boot Kind = iota
	// Power: domain power-state transitions.
	Power
	// IRQ: interrupt deliveries and handler dispatch.
	IRQ
	// Mailbox: inter-kernel messages.
	Mailbox
	// DSM: coherence faults and ownership transfers.
	DSM
	// Sched: NightWatch suspend/resume and scheduling events.
	Sched
	// Mem: balloon operations and meta-manager decisions.
	Mem
	// User: application-emitted events.
	User
	// Fault: injected faults (crashes, dropped or delayed mail, spurious
	// IRQs) and the kernels' recovery actions (watchdog verdicts, directory
	// and balloon reclaims).
	Fault
	// Vote: replica vote points — digests arriving on the strong kernel,
	// quorum and timeout commits, outvoted replicas and re-integrations.
	Vote
	numKinds
)

var kindNames = [...]string{"boot", "power", "irq", "mailbox", "dsm", "sched", "mem", "user", "fault", "vote"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind resolves a kind name ("dsm", "sched", ...).
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown kind %q", s)
}

// Kinds lists all kind names.
func Kinds() []string { return append([]string(nil), kindNames[:]...) }

// Event is one trace record.
type Event struct {
	Seq  uint64
	At   sim.Time
	Kind Kind
	Msg  string
}

func (e Event) String() string {
	return fmt.Sprintf("%12v %-7s %s", e.At, e.Kind, e.Msg)
}

// Buffer is a bounded ring of events. The zero value is unusable; use New.
// All kinds start enabled.
type Buffer struct {
	eng     *sim.Engine
	ring    []Event
	next    int // overwrite position once the ring is full
	seq     uint64
	enabled [numKinds]bool
	sink    func(Event) // live subscriber, or nil

	// Counts tallies emitted events per kind, including ones that have
	// been overwritten in the ring (and ones suppressed while disabled
	// are NOT counted).
	Counts [numKinds]uint64
}

// New returns a buffer holding up to capacity events.
func New(eng *sim.Engine, capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1024
	}
	b := &Buffer{eng: eng, ring: make([]Event, 0, capacity)}
	for i := range b.enabled {
		b.enabled[i] = true
	}
	return b
}

// Enable turns a kind on or off.
func (b *Buffer) Enable(k Kind, on bool) { b.enabled[k] = on }

// Enabled reports whether a kind is recorded.
func (b *Buffer) Enabled(k Kind) bool { return b.enabled[k] }

// SetSink installs a streaming subscriber: every subsequently recorded
// event (after it enters the ring, so the ring and the stream agree) is
// also passed to fn, live. Events of disabled kinds are not delivered. A
// nil fn removes the sink. The sink runs synchronously on the emitting
// goroutine and must not re-enter the buffer or touch simulation state;
// anything slow or cross-goroutine belongs behind a channel or lock of the
// subscriber's own.
func (b *Buffer) SetSink(fn func(Event)) { b.sink = fn }

// EnableOnly records just the given kinds.
func (b *Buffer) EnableOnly(kinds ...Kind) {
	for i := range b.enabled {
		b.enabled[i] = false
	}
	for _, k := range kinds {
		b.enabled[k] = true
	}
}

// Emit records an event at the current virtual time.
func (b *Buffer) Emit(k Kind, format string, args ...any) {
	if b == nil || !b.enabled[k] {
		return
	}
	b.seq++
	b.Counts[k]++
	ev := Event{Seq: b.seq, At: b.eng.Now(), Kind: k, Msg: fmt.Sprintf(format, args...)}
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, ev)
	} else {
		b.ring[b.next] = ev
		b.next++
		if b.next == cap(b.ring) {
			b.next = 0
		}
	}
	if b.sink != nil {
		b.sink(ev)
	}
}

// Len returns the number of retained events.
func (b *Buffer) Len() int { return len(b.ring) }

// Events returns retained events oldest-first.
func (b *Buffer) Events() []Event {
	out := make([]Event, 0, len(b.ring))
	if len(b.ring) == cap(b.ring) {
		out = append(out, b.ring[b.next:]...)
		out = append(out, b.ring[:b.next]...)
	} else {
		out = append(out, b.ring...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Filter returns retained events of one kind, oldest-first.
func (b *Buffer) Filter(k Kind) []Event {
	var out []Event
	for _, e := range b.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes all retained events to w, followed by per-kind totals.
func (b *Buffer) Dump(w io.Writer) error {
	for _, e := range b.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	var tot []string
	for k := Kind(0); k < numKinds; k++ {
		if b.Counts[k] > 0 {
			tot = append(tot, fmt.Sprintf("%s=%d", k, b.Counts[k]))
		}
	}
	_, err := fmt.Fprintf(w, "-- %d retained; totals: %s\n", b.Len(), strings.Join(tot, " "))
	return err
}

// Total returns the number of events ever emitted (per enabled kinds).
func (b *Buffer) Total() uint64 {
	var n uint64
	for _, c := range b.Counts {
		n += c
	}
	return n
}
