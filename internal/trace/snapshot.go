package trace

// BufferState is the tracer's checkpointable state: the raw ring (including
// its overwrite cursor), the sequence counter, per-kind enablement, and the
// emit counters. The sink is not captured — it is a live subscriber owned by
// whoever is watching the restored run.
type BufferState struct {
	Ring    []Event
	Next    int
	Seq     uint64
	Enabled []bool
	Counts  []uint64
}

// CaptureState records the tracer's state.
func (b *Buffer) CaptureState() BufferState {
	st := BufferState{
		Ring:    append([]Event(nil), b.ring...),
		Next:    b.next,
		Seq:     b.seq,
		Enabled: make([]bool, numKinds),
		Counts:  make([]uint64, numKinds),
	}
	copy(st.Enabled, b.enabled[:])
	copy(st.Counts, b.Counts[:])
	return st
}

// RestoreState rewinds the tracer onto a captured state. The buffer must
// have the same capacity as the one captured (it comes from the same boot
// options); the sink is left untouched.
func (b *Buffer) RestoreState(st BufferState) {
	b.ring = append(b.ring[:0], st.Ring...)
	b.next = st.Next
	b.seq = st.Seq
	copy(b.enabled[:], st.Enabled)
	copy(b.Counts[:], st.Counts)
}
