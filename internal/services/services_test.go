package services

import (
	"reflect"
	"testing"
	"time"

	"k2/internal/dsm"
	"k2/internal/mem"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

func TestRegistryClassification(t *testing.T) {
	r := NewRegistry()
	r.Register("page-allocator", Independent)
	r.Register("interrupt-mgmt", Independent)
	r.Register("dma-driver", Shadowed)
	r.Register("ext2", Shadowed)
	r.Register("udp", Shadowed)
	r.Register("cpu-power", Private)

	if c, ok := r.Class("ext2"); !ok || c != Shadowed {
		t.Fatalf("ext2 class = %v/%v", c, ok)
	}
	if _, ok := r.Class("missing"); ok {
		t.Fatal("missing service found")
	}
	if r.Count(Shadowed) != 3 || r.Count(Independent) != 2 || r.Count(Private) != 1 {
		t.Fatal("counts wrong")
	}
	got := r.Names(func(c Class) bool { return c == Independent })
	want := []string{"interrupt-mgmt", "page-allocator"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
}

func TestShadowedStateCoherenceAndLock(t *testing.T) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	sc := sched.New(s, false)
	d := dsm.New(s, dsm.DefaultParams())
	for _, k := range []soc.DomainID{soc.Strong, soc.Weak} {
		k := k
		core := d.ServiceCore[k]
		e.Spawn("dispatch-"+k.String(), func(p *sim.Proc) {
			for {
				msg, from := s.Mailbox.RecvFrom(p, k)
				d.HandleMessage(p, core, k, from, msg)
			}
		})
	}
	e.Spawn("drainer", d.RunMainDrainer)

	ss := NewShadowedState("svc", d, s.Spinlocks.Lock(2), []mem.PFN{500, 501})
	if d.SharedPages() != 2 {
		t.Fatalf("shared pages = %d", d.SharedPages())
	}

	inCrit := 0
	violated := false
	op := func(th *sched.Thread) {
		ss.Enter(th)
		inCrit++
		if inCrit > 1 {
			violated = true
		}
		ss.Touch(th, 0, true)
		th.Exec(soc.Work(10 * time.Microsecond))
		inCrit--
		ss.Exit(th)
	}
	pa := sc.NewProcess("a")
	pb := sc.NewProcess("b")
	pa.Spawn(sched.Normal, "main-user", func(th *sched.Thread) {
		for i := 0; i < 5; i++ {
			op(th)
			th.SleepIdle(time.Millisecond)
		}
	})
	pb.Spawn(sched.NightWatch, "weak-user", func(th *sched.Thread) {
		for i := 0; i < 5; i++ {
			op(th)
			th.SleepIdle(time.Millisecond)
		}
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if violated {
		t.Fatal("hardware spinlock failed to serialize cross-domain critical sections")
	}
	// Ownership must have bounced: both kernels faulted at least once.
	if d.RequesterStats[soc.Weak].Faults == 0 || d.RequesterStats[soc.Strong].Faults == 0 {
		t.Fatalf("faults main=%d shadow=%d; expected ping-pong",
			d.RequesterStats[soc.Strong].Faults, d.RequesterStats[soc.Weak].Faults)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShadowedStateBaselineIsFree(t *testing.T) {
	e := sim.NewEngine()
	s := soc.New(e, soc.DefaultConfig())
	sc := sched.New(s, true)
	ss := NewShadowedState("svc", nil, nil, nil)
	pr := sc.NewProcess("a")
	var dur time.Duration
	pr.Spawn(sched.Normal, "t", func(th *sched.Thread) {
		start := th.P().Now()
		for i := 0; i < 100; i++ {
			ss.Enter(th)
			ss.Touch(th, 0, true)
			ss.Exit(th)
		}
		dur = th.P().Now().Sub(start)
	})
	if err := e.Run(sim.Time(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if dur != 0 {
		t.Fatalf("baseline shadowed-state access cost %v, want 0", dur)
	}
}
