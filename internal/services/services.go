// Package services implements K2's service classification and the shadowed
// service substrate (§5.2, §5.3).
//
// K2 classifies OS services three ways: private services are implemented
// separately per kernel (core power management, platform init); independent
// services run one coordinated instance per kernel with no shared state
// (page allocator, interrupt management); shadowed services — the largest
// category, including device drivers, file systems and the network stack —
// are built from the same source in both kernels while K2 transparently
// keeps their state coherent through the DSM, with their locks augmented by
// hardware spinlocks for inter-domain synchronization.
package services

import (
	"fmt"
	"sort"
	"time"

	"k2/internal/dsm"
	"k2/internal/mem"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

// Class is a service's replication strategy.
type Class int

const (
	// Private: per-kernel implementation and state (§5.3 steps 1-2).
	Private Class = iota
	// Independent: per-kernel instances coordinated by K2 (§5.3 step 3).
	Independent
	// Shadowed: one source, replicated state kept coherent by the DSM
	// (§5.3 step 4).
	Shadowed
)

func (c Class) String() string {
	switch c {
	case Private:
		return "private"
	case Independent:
		return "independent"
	default:
		return "shadowed"
	}
}

// Registry records the classification of every OS service, the analog of
// the refactoring decisions in §5.3.
type Registry struct {
	entries map[string]Class
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{entries: make(map[string]Class)} }

// Register records service name with its class.
func (r *Registry) Register(name string, c Class) {
	r.entries[name] = c
}

// Class looks up a service's class.
func (r *Registry) Class(name string) (Class, bool) {
	c, ok := r.entries[name]
	return c, ok
}

// Names returns all registered service names, sorted, optionally filtered
// by class.
func (r *Registry) Names(filter func(Class) bool) []string {
	var out []string
	for n, c := range r.entries {
		if filter == nil || filter(c) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// Count returns how many services have the given class.
func (r *Registry) Count(c Class) int {
	n := 0
	for _, e := range r.entries {
		if e == c {
			n++
		}
	}
	return n
}

// ShadowedState is the coherent state of one shadowed service: a set of
// DSM-managed pages plus a hardware spinlock guarding them. Service code in
// either kernel calls Enter/Touch/Exit around its critical sections; the
// DSM faults in ownership transparently (§6.3) and the spinlock provides
// the inter-domain mutual exclusion that the service's original lock cannot
// (§5.3 step 4).
//
// With a nil DSM the state degrades to a plain locked region — the
// configuration of the single-kernel Linux baseline, where hardware
// coherence covers everything.
type ShadowedState struct {
	Name  string
	Pages []mem.PFN

	d    *dsm.DSM
	lock *soc.HWSpinlock
}

// NewShadowedState registers the pages with the DSM (if any) and binds the
// hardware spinlock.
func NewShadowedState(name string, d *dsm.DSM, lock *soc.HWSpinlock, pages []mem.PFN) *ShadowedState {
	ss := &ShadowedState{Name: name, Pages: pages, d: d, lock: lock}
	if d != nil {
		for _, p := range pages {
			d.Share(p)
		}
	}
	return ss
}

// Enter acquires the service lock from the calling thread's kernel. The
// spin loop yields the core between retries: the lock holder may be a
// preempted thread of this same kernel (e.g. a NightWatch thread suspended
// mid-operation), and monopolizing the kernel's only core while spinning
// would deadlock — the spin-then-yield discipline a real kernel uses when
// it cannot disable preemption across domains.
func (ss *ShadowedState) Enter(t *sched.Thread) {
	if ss.lock == nil {
		return
	}
	backoff := 400 * time.Nanosecond
	const maxBackoff = 100 * time.Microsecond
	for !ss.lock.TryAcquire(t.P(), t.Core()) {
		t.ExecFor(backoff)
		if backoff < maxBackoff {
			backoff *= 2
		}
		t.Yield()
	}
}

// Exit releases the service lock.
func (ss *ShadowedState) Exit(t *sched.Thread) {
	if ss.lock != nil {
		ss.lock.Release(t.P(), t.Core())
	}
}

// Touch accesses state page i; under K2 this may take a DSM fault that
// migrates ownership to the calling kernel.
func (ss *ShadowedState) Touch(t *sched.Thread, i int, write bool) {
	if ss.d == nil {
		return // Linux baseline: hardware-coherent access
	}
	if i < 0 || i >= len(ss.Pages) {
		panic(fmt.Sprintf("services: %s: touch of state page %d/%d", ss.Name, i, len(ss.Pages)))
	}
	ss.d.Access(t.P(), t.Core(), t.Kernel(), ss.Pages[i], write)
}

// TouchFrom is Touch for code running outside a scheduled thread (e.g. an
// interrupt handler proc executing on a specific core).
func (ss *ShadowedState) TouchFrom(p *sim.Proc, core *soc.Core, k soc.DomainID, i int, write bool) {
	if ss.d == nil {
		return
	}
	ss.d.Access(p, core, k, ss.Pages[i], write)
}

// EnterFrom / ExitFrom are Enter/Exit for interrupt-handler contexts.
func (ss *ShadowedState) EnterFrom(p *sim.Proc, core *soc.Core) {
	if ss.lock != nil {
		ss.lock.Acquire(p, core)
	}
}

// ExitFrom releases the lock from an interrupt-handler context.
func (ss *ShadowedState) ExitFrom(p *sim.Proc, core *soc.Core) {
	if ss.lock != nil {
		ss.lock.Release(p, core)
	}
}
