// Package vm implements K2's unified kernel virtual address space (§6.1,
// Figure 4).
//
// Each kernel sees its physical memory as two direct-mapped regions: a small
// local region holding its code and the static objects of private and
// independent services, and the shared global region holding shadowed
// service state and all dynamically allocated pages. K2 places the shadow
// kernel's local region at the start of physical memory, the main kernel's
// local region immediately before the global region, and keeps both kernels'
// virtual-to-physical offsets identical, so shared memory objects have the
// same virtual address in both kernels and the main kernel sees no memory
// holes.
//
// The package also tracks mapping granularity: non-shared memory is mapped
// with large sections (1 MB or 16 MB) to relieve TLB pressure, and a section
// is demoted to 4 KB pages on demand when the DSM first shares an address in
// it (§6.3, "Optimize memory footprint").
package vm

import (
	"fmt"

	"k2/internal/mem"
	"k2/internal/soc"
)

// KernelOffset is the constant virtual-to-physical offset shared by both
// kernels. K2 enlarges the 32-bit kernel split to 2 GB to direct-map all
// RAM (§6.1); we use the resulting base.
const KernelOffset = 0x8000_0000

// VAddr is a kernel virtual address.
type VAddr uint64

// Layout describes the physical memory arrangement of Figure 4, in pages,
// generalized to N shadow kernels: each weak kernel gets its own local
// region at the bottom of memory, followed by the main kernel's local region
// and then the shared global region.
type Layout struct {
	PageSize int
	// WeakKernels is the number of shadow kernels; each gets a local region
	// of ShadowLocalPages.
	WeakKernels int
	// ShadowLocal of weak kernel i (1-based DomainID) is
	// [(i-1)*ShadowLocalPages, i*ShadowLocalPages).
	ShadowLocalPages int
	// MainLocal is the MainLocalPages pages after the shadow local regions.
	MainLocalPages int
	// TotalPages is the size of physical memory.
	TotalPages int
}

// NewLayout computes the two-kernel (one shadow) layout for the given memory
// size; local region sizes are in 16 MB blocks.
func NewLayout(totalPages, pageSize, shadowBlocks, mainBlocks int) Layout {
	return NewLayoutN(totalPages, pageSize, shadowBlocks, mainBlocks, 1)
}

// NewLayoutN computes the layout for a platform with weakKernels shadow
// kernels; local region sizes are in 16 MB blocks per kernel.
func NewLayoutN(totalPages, pageSize, shadowBlocks, mainBlocks, weakKernels int) Layout {
	return Layout{
		PageSize:         pageSize,
		WeakKernels:      weakKernels,
		ShadowLocalPages: shadowBlocks * mem.BlockPages,
		MainLocalPages:   mainBlocks * mem.BlockPages,
		TotalPages:       totalPages,
	}
}

// ShadowLocalStart returns the first page of weak kernel k's local region.
func (l Layout) ShadowLocalStart(k soc.DomainID) mem.PFN {
	if k < soc.Weak || int(k) > l.WeakKernels {
		panic(fmt.Sprintf("vm: %v is not a weak kernel of this layout", k))
	}
	return mem.PFN((int(k) - 1) * l.ShadowLocalPages)
}

// MainLocalStart returns the first page of the main local region; it sits
// immediately before the global region so the main kernel's dynamically
// grown memory is contiguous with it.
func (l Layout) MainLocalStart() mem.PFN {
	return mem.PFN(l.WeakKernels * l.ShadowLocalPages)
}

// GlobalStart returns the first page of the shared global region.
func (l Layout) GlobalStart() mem.PFN {
	return mem.PFN(l.WeakKernels*l.ShadowLocalPages + l.MainLocalPages)
}

// GlobalEnd returns one past the last page of the global region.
func (l Layout) GlobalEnd() mem.PFN { return mem.PFN(l.TotalPages) }

// LocalRegion returns the local region of kernel k as (start, pages).
func (l Layout) LocalRegion(k soc.DomainID) (mem.PFN, int) {
	if k == soc.Strong {
		return l.MainLocalStart(), l.MainLocalPages
	}
	return l.ShadowLocalStart(k), l.ShadowLocalPages
}

// VirtOf returns the unified kernel virtual address of a physical page.
// Because both kernels use the same offset, the result is valid in both
// address spaces — the property that lets shadowed services share pointers.
func (l Layout) VirtOf(p mem.PFN) VAddr {
	return VAddr(KernelOffset + uint64(p)*uint64(l.PageSize))
}

// PhysOf inverts VirtOf.
func (l Layout) PhysOf(v VAddr) (mem.PFN, error) {
	if v < KernelOffset {
		return 0, fmt.Errorf("vm: %#x below the direct map", uint64(v))
	}
	p := mem.PFN((uint64(v) - KernelOffset) / uint64(l.PageSize))
	if int(p) >= l.TotalPages {
		return 0, fmt.Errorf("vm: %#x beyond the direct map", uint64(v))
	}
	return p, nil
}

// SectionPages is the number of 4 KB pages in one large-grain section
// mapping (1 MB, the ARM short-descriptor section size).
const SectionPages = 256

// AddressSpace tracks one kernel's mapping granularity over the direct map.
// It exists to quantify the footprint optimization: shared pages force 4 KB
// mappings; everything else stays in sections.
type AddressSpace struct {
	Kernel  soc.DomainID
	layout  Layout
	demoted map[mem.PFN]bool // section base -> demoted to 4 KB maps
	temp    map[VAddr]int    // temporary IO mappings: base -> pages

	// Demotions counts section demotions performed.
	Demotions int
}

// NewAddressSpace returns kernel k's address space over the layout.
func NewAddressSpace(k soc.DomainID, l Layout) *AddressSpace {
	return &AddressSpace{
		Kernel:  k,
		layout:  l,
		demoted: make(map[mem.PFN]bool),
		temp:    make(map[VAddr]int),
	}
}

// Layout returns the address-space layout.
func (a *AddressSpace) Layout() Layout { return a.layout }

func sectionBase(p mem.PFN) mem.PFN { return p &^ (SectionPages - 1) }

// EnsureSmallPage demotes the section containing p to 4 KB mappings if it
// has not been already; the DSM calls this the first time an address is
// shared between kernels. It reports whether a demotion happened.
func (a *AddressSpace) EnsureSmallPage(p mem.PFN) bool {
	base := sectionBase(p)
	if a.demoted[base] {
		return false
	}
	a.demoted[base] = true
	a.Demotions++
	return true
}

// SmallMapped reports whether p lives in a demoted (4 KB-mapped) section.
func (a *AddressSpace) SmallMapped(p mem.PFN) bool {
	return a.demoted[sectionBase(p)]
}

// PTEs estimates the number of last-level page table entries needed for the
// direct map: one per section, plus one per 4 KB page of each demoted
// section. It quantifies the footprint saved by demoting on demand only.
func (a *AddressSpace) PTEs() int {
	sections := (a.layout.TotalPages + SectionPages - 1) / SectionPages
	return sections + len(a.demoted)*(SectionPages-1)
}

// MapIO establishes a temporary mapping (e.g. for device memory). Creations
// are infrequent; K2 propagates the page-table update to the peer kernel
// with a simple protocol (§6.1) — the OS layer performs that messaging.
func (a *AddressSpace) MapIO(base VAddr, pages int) error {
	if _, dup := a.temp[base]; dup {
		return fmt.Errorf("vm: temporary mapping at %#x already exists", uint64(base))
	}
	a.temp[base] = pages
	return nil
}

// UnmapIO removes a temporary mapping.
func (a *AddressSpace) UnmapIO(base VAddr) error {
	if _, ok := a.temp[base]; !ok {
		return fmt.Errorf("vm: no temporary mapping at %#x", uint64(base))
	}
	delete(a.temp, base)
	return nil
}

// TempMappings returns the number of live temporary mappings.
func (a *AddressSpace) TempMappings() int { return len(a.temp) }
