package vm

import (
	"sort"

	"k2/internal/mem"
)

// TempMap is one temporary IO mapping.
type TempMap struct {
	Base  uint64
	Pages int
}

// AddressSpaceState is one kernel address space's checkpointable state.
type AddressSpaceState struct {
	Demoted   []int // demoted section bases, ascending
	Temp      []TempMap
	Demotions int
}

// CaptureState records the address space's mapping state.
func (a *AddressSpace) CaptureState() AddressSpaceState {
	st := AddressSpaceState{Demotions: a.Demotions}
	for base := range a.demoted {
		st.Demoted = append(st.Demoted, int(base))
	}
	sort.Ints(st.Demoted)
	for base, pages := range a.temp {
		st.Temp = append(st.Temp, TempMap{Base: uint64(base), Pages: pages})
	}
	sort.Slice(st.Temp, func(i, j int) bool { return st.Temp[i].Base < st.Temp[j].Base })
	return st
}

// RestoreState rewinds the address space onto a captured state.
func (a *AddressSpace) RestoreState(st AddressSpaceState) {
	a.demoted = make(map[mem.PFN]bool, len(st.Demoted))
	for _, base := range st.Demoted {
		a.demoted[mem.PFN(base)] = true
	}
	a.temp = make(map[VAddr]int, len(st.Temp))
	for _, t := range st.Temp {
		a.temp[VAddr(t.Base)] = t.Pages
	}
	a.Demotions = st.Demotions
}
