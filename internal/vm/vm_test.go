package vm

import (
	"testing"
	"testing/quick"

	"k2/internal/mem"
	"k2/internal/soc"
)

func testLayout() Layout {
	return NewLayout(262144, 4096, 1, 2) // 1 GB, 16 MB shadow, 32 MB main
}

func TestLayoutRegionsAreContiguous(t *testing.T) {
	l := testLayout()
	if l.ShadowLocalStart(soc.Weak) != 0 {
		t.Fatal("shadow local must start at 0")
	}
	if l.MainLocalStart() != mem.PFN(l.ShadowLocalPages) {
		t.Fatal("main local must follow shadow local")
	}
	if l.GlobalStart() != l.MainLocalStart()+mem.PFN(l.MainLocalPages) {
		t.Fatal("global must follow main local (no holes for the main kernel)")
	}
	if l.GlobalEnd() != mem.PFN(l.TotalPages) {
		t.Fatal("global must span to the end of memory")
	}
	ms, mp := l.LocalRegion(soc.Strong)
	if ms != l.MainLocalStart() || mp != l.MainLocalPages {
		t.Fatal("LocalRegion(strong) mismatch")
	}
	ss, sp := l.LocalRegion(soc.Weak)
	if ss != 0 || sp != l.ShadowLocalPages {
		t.Fatal("LocalRegion(weak) mismatch")
	}
}

func TestUnifiedVirtualAddresses(t *testing.T) {
	l := testLayout()
	// Constraint 1 (§6.1): a shared object has identical virtual addresses
	// in both kernels — trivially true with a single VirtOf, asserted here
	// by round-tripping through both address spaces' shared layout.
	p := l.GlobalStart() + 17
	v := l.VirtOf(p)
	back, err := l.PhysOf(v)
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("round trip %d -> %#x -> %d", p, uint64(v), back)
	}
}

func TestPhysOfRejectsOutOfRange(t *testing.T) {
	l := testLayout()
	if _, err := l.PhysOf(VAddr(0x1000)); err == nil {
		t.Fatal("below direct map accepted")
	}
	if _, err := l.PhysOf(l.VirtOf(mem.PFN(l.TotalPages))); err == nil {
		t.Fatal("beyond direct map accepted")
	}
}

// Property: VirtOf is linear (constraint 2: the linear-mapping assumption
// holds across the whole direct map) and PhysOf inverts it.
func TestQuickLinearMapping(t *testing.T) {
	l := testLayout()
	f := func(rawA, rawB uint32) bool {
		a := mem.PFN(rawA) % mem.PFN(l.TotalPages)
		b := mem.PFN(rawB) % mem.PFN(l.TotalPages)
		va, vb := l.VirtOf(a), l.VirtOf(b)
		if VAddr(int64(va)-int64(vb)) != VAddr((int64(a)-int64(b))*int64(l.PageSize)) {
			return false
		}
		ra, err := l.PhysOf(va)
		return err == nil && ra == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDemotionOnDemand(t *testing.T) {
	l := testLayout()
	as := NewAddressSpace(soc.Strong, l)
	base := l.GlobalStart()
	if as.SmallMapped(base) {
		t.Fatal("fresh space should be section-mapped")
	}
	before := as.PTEs()
	if !as.EnsureSmallPage(base + 3) {
		t.Fatal("first share must demote")
	}
	if as.EnsureSmallPage(base + 5) {
		t.Fatal("same section must not demote twice")
	}
	if !as.SmallMapped(base + 200) {
		t.Fatal("whole section should now be 4KB-mapped")
	}
	if as.SmallMapped(base + SectionPages) {
		t.Fatal("neighbouring section must stay section-mapped")
	}
	if as.PTEs() != before+SectionPages-1 {
		t.Fatalf("PTE accounting wrong: %d -> %d", before, as.PTEs())
	}
}

func TestTempMappings(t *testing.T) {
	as := NewAddressSpace(soc.Weak, testLayout())
	if err := as.MapIO(0xF000_0000, 16); err != nil {
		t.Fatal(err)
	}
	if err := as.MapIO(0xF000_0000, 16); err == nil {
		t.Fatal("duplicate mapping accepted")
	}
	if as.TempMappings() != 1 {
		t.Fatal("mapping count")
	}
	if err := as.UnmapIO(0xF000_0000); err != nil {
		t.Fatal(err)
	}
	if err := as.UnmapIO(0xF000_0000); err == nil {
		t.Fatal("double unmap accepted")
	}
}
