package snap

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// sample is a state-struct stand-in exercising every supported kind.
type sample struct {
	B     bool
	I     int
	I8    int8
	U     uint64
	F     float64
	D     time.Duration
	S     string
	Bytes []byte
	Ints  []int32
	Arr   [3]uint16
	M     map[string]int64
	MI    map[int]string
	P     *inner
	PNil  *inner
	In    inner
}

type inner struct {
	N    int
	Tags []string
}

func testValue() sample {
	return sample{
		B: true, I: -42, I8: -7, U: 1 << 60, F: 3.14159, D: 250 * time.Microsecond,
		S: "hello", Bytes: []byte{1, 2, 3}, Ints: []int32{5, -6, 7},
		Arr: [3]uint16{9, 8, 7},
		M:   map[string]int64{"z": 26, "a": 1, "m": 13},
		MI:  map[int]string{3: "three", 1: "one", 2: "two"},
		P:   &inner{N: 99, Tags: []string{"x", "y"}},
		In:  inner{N: 5},
	}
}

func TestRoundTrip(t *testing.T) {
	v := testValue()
	data := Encode(v)
	var got sample
	if err := Decode(data, &got); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(v, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", v, got)
	}
	if again := Encode(got); !bytes.Equal(data, again) {
		t.Fatal("encode -> decode -> encode not byte-stable")
	}
}

// TestDeterministicMaps: the same map content must encode identically no
// matter how the map was built (insertion order perturbs Go's iteration
// order; the codec must not care).
func TestDeterministicMaps(t *testing.T) {
	a := map[string]int64{}
	b := map[string]int64{}
	keys := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for i, k := range keys {
		a[k] = int64(i)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b[keys[i]] = int64(i)
	}
	if !bytes.Equal(Encode(a), Encode(b)) {
		t.Fatal("map encoding depends on insertion order")
	}
}

func TestNilVsEmpty(t *testing.T) {
	type s struct {
		S []int
		M map[int]int
	}
	nilv := Encode(s{})
	empty := Encode(s{S: []int{}, M: map[int]int{}})
	if bytes.Equal(nilv, empty) {
		t.Fatal("nil and empty collections must encode differently (restore fidelity)")
	}
	var back s
	if err := Decode(nilv, &back); err != nil {
		t.Fatal(err)
	}
	if back.S != nil || back.M != nil {
		t.Fatal("nil collections did not decode to nil")
	}
	if err := Decode(empty, &back); err != nil {
		t.Fatal(err)
	}
	if back.S == nil || back.M == nil {
		t.Fatal("empty collections did not decode to empty")
	}
}

func TestDecodeErrors(t *testing.T) {
	v := testValue()
	data := Encode(v)
	// Truncations at every length must error, never panic.
	for n := 0; n < len(data); n++ {
		var out sample
		if err := Decode(data[:n], &out); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
	// Trailing garbage is rejected.
	var out sample
	if err := Decode(append(append([]byte{}, data...), 0), &out); err == nil {
		t.Fatal("trailing byte decoded without error")
	}
	// A huge slice length prefix must be rejected before allocation.
	type sl struct{ S []uint64 }
	bad := []byte{1, 0xff, 0xff, 0xff, 0x7f}
	var s sl
	if err := Decode(bad, &s); err == nil {
		t.Fatal("oversized slice length decoded without error")
	}
	// Non-pointer target.
	if err := Decode(data, sample{}); err == nil {
		t.Fatal("non-pointer target accepted")
	}
}

func TestEncodeRejectsFuncs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode of a func field did not panic")
		}
	}()
	type withFunc struct{ F func() }
	Encode(withFunc{F: func() {}})
}
