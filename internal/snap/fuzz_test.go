package snap

import (
	"bytes"
	"testing"
	"time"
)

// msiSnapSeed mirrors the shape dsm.DSMState takes under the MSI protocol —
// Shared levels plus a per-kernel probOwner hint vector on every page — so
// the committed corpus exercises the codec on realistic MSI snapshot bytes
// (the TwoState shape leaves ProbOwner nil).
type msiSnapSeed struct {
	Pages        []msiPageSeed
	DeadReclaims int
}

type msiPageSeed struct {
	PFN       int
	Levels    []int
	Owner     int
	ProbOwner []int
}

// replicaStateSeed mirrors replica.State — the NMR layer's checkpointed
// voter: degree, vote timeout, the monotonic counters and the swept-dead
// domain list — so the corpus round-trips replication metadata too.
type replicaStateSeed struct {
	R              int
	VoteTimeoutNS  int64
	Votes          uint64
	Outvoted       uint64
	Reintegrations uint64
	QuorumCommits  uint64
	TimeoutCommits uint64
	SweptDomains   uint64
	Reboots        uint64
	Swept          []int
}

// FuzzDecode is the snapshot-codec fuzz target: decoding arbitrary bytes
// must never panic, and any bytes that do decode must re-encode to a stable
// fixed point (encode -> decode -> encode is byte-identical from the first
// re-encode on). CI replays the committed corpus in its fuzz-replay step.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode(testValue()))
	f.Add(Encode(sample{M: map[string]int64{"k": 1}, P: &inner{N: 1}}))
	f.Add([]byte{1, 0xff, 0xff, 0xff, 0x7f})
	corrupt := Encode(testValue())
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)
	f.Add(Encode(msiSnapSeed{
		Pages: []msiPageSeed{
			{PFN: 7, Levels: []int{1, 0, 2}, Owner: 2, ProbOwner: []int{2, 0, 2}},
			{PFN: 9, Levels: []int{1, 1, 1}, Owner: 0, ProbOwner: []int{0, 2, 0}},
		},
		DeadReclaims: 1,
	}))
	msiCorrupt := Encode(msiSnapSeed{
		Pages: []msiPageSeed{{PFN: 3, Levels: []int{2, 0}, Owner: 0, ProbOwner: []int{0, 0}}},
	})
	msiCorrupt[len(msiCorrupt)/3] ^= 0xff
	f.Add(msiCorrupt)
	f.Add(Encode(replicaStateSeed{
		R: 3, VoteTimeoutNS: 500_000, Votes: 95, Outvoted: 1,
		Reintegrations: 1, QuorumCommits: 32, SweptDomains: 1, Reboots: 1,
		Swept: []int{2},
	}))
	repCorrupt := Encode(replicaStateSeed{R: 2, VoteTimeoutNS: 500_000, TimeoutCommits: 7, Swept: []int{1, 4}})
	repCorrupt[len(repCorrupt)/4] ^= 0xff
	f.Add(repCorrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		var v sample
		if err := Decode(data, &v); err != nil {
			return
		}
		first := Encode(v)
		var v2 sample
		if err := Decode(first, &v2); err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if second := Encode(v2); !bytes.Equal(first, second) {
			t.Fatalf("encode not a fixed point:\nfirst:  %x\nsecond: %x", first, second)
		}
	})
}

// FuzzRoundTrip drives the encoder from fuzzed field values instead of
// fuzzed bytes: every generated value must round-trip exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(int64(0), uint64(0), 0.0, "", []byte(nil), true)
	f.Add(int64(-1), uint64(1<<63), 1e300, "k2", []byte{1, 2}, false)
	f.Fuzz(func(t *testing.T, i int64, u uint64, fl float64, s string, b []byte, flag bool) {
		v := sample{
			B: flag, I: int(i), U: u, F: fl, D: time.Duration(i), S: s, Bytes: b,
			M: map[string]int64{s: i},
		}
		data := Encode(v)
		var got sample
		if err := Decode(data, &got); err != nil {
			t.Fatalf("decode of fresh encoding failed: %v", err)
		}
		if again := Encode(got); !bytes.Equal(data, again) {
			t.Fatal("round trip not byte-stable")
		}
	})
}
