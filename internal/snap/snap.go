// Package snap is the deterministic binary codec behind checkpoint/fork:
// it serializes the plain-data state structs each stateful package exposes
// (EngineState, SoCState, ...) into a byte string whose content depends only
// on the value — never on map iteration order or pointer identity — so two
// identical system states encode to identical bytes and a snapshot can be
// diffed, hashed, cached and forked byte-for-byte.
//
// The format is deliberately simple: fixed-width little-endian integers,
// IEEE-754 bit patterns for floats, length-prefixed strings and slices, maps
// with entries sorted by encoded key, and a one-byte nil flag before pointer
// targets. There is no schema and no versioning; a snapshot is only ever
// decoded by the binary that produced it.
//
// Encode panics on types the format cannot represent (funcs, channels,
// interfaces, unexported fields) — those are programming errors in a state
// struct. Decode never panics: every read is bounds-checked and corrupt
// input yields an error, which is what the fuzz target exercises.
package snap

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sort"
)

// Encode serializes v deterministically. It panics if v (or anything it
// reaches) contains a type the format does not support.
func Encode(v any) []byte {
	var e encoder
	e.value(reflect.ValueOf(v))
	return e.buf
}

// Decode parses data produced by Encode back into *out. It returns an error
// (never panics) when the bytes do not form a valid encoding of out's type.
func Decode(data []byte, out any) error {
	rv := reflect.ValueOf(out)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("snap: Decode needs a non-nil pointer, got %T", out)
	}
	d := decoder{buf: data}
	if err := d.value(rv.Elem()); err != nil {
		return err
	}
	if d.pos != len(data) {
		return fmt.Errorf("snap: %d trailing bytes", len(data)-d.pos)
	}
	return nil
}

type encoder struct{ buf []byte }

func (e *encoder) u8(v byte)    { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

func (e *encoder) value(v reflect.Value) {
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			e.u8(1)
		} else {
			e.u8(0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		e.u64(uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		e.u64(v.Uint())
	case reflect.Float32, reflect.Float64:
		e.u64(math.Float64bits(v.Float()))
	case reflect.String:
		s := v.String()
		e.u32(uint32(len(s)))
		e.buf = append(e.buf, s...)
	case reflect.Slice:
		if v.IsNil() {
			e.u8(0)
			return
		}
		e.u8(1)
		e.u32(uint32(v.Len()))
		for i := 0; i < v.Len(); i++ {
			e.value(v.Index(i))
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			e.value(v.Index(i))
		}
	case reflect.Map:
		if v.IsNil() {
			e.u8(0)
			return
		}
		e.u8(1)
		e.u32(uint32(v.Len()))
		type kv struct {
			kb   []byte
			k, v reflect.Value
		}
		entries := make([]kv, 0, v.Len())
		it := v.MapRange()
		for it.Next() {
			var ke encoder
			ke.value(it.Key())
			entries = append(entries, kv{ke.buf, it.Key(), it.Value()})
		}
		sort.Slice(entries, func(i, j int) bool {
			return string(entries[i].kb) < string(entries[j].kb)
		})
		for _, ent := range entries {
			e.buf = append(e.buf, ent.kb...)
			e.value(ent.v)
		}
	case reflect.Pointer:
		if v.IsNil() {
			e.u8(0)
			return
		}
		e.u8(1)
		e.value(v.Elem())
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				panic(fmt.Sprintf("snap: unexported field %s.%s", t, t.Field(i).Name))
			}
			e.value(v.Field(i))
		}
	default:
		panic(fmt.Sprintf("snap: unsupported kind %s (%s)", v.Kind(), v.Type()))
	}
}

type decoder struct {
	buf []byte
	pos int
}

func (d *decoder) u8() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, fmt.Errorf("snap: truncated at byte %d", d.pos)
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.pos+4 > len(d.buf) {
		return 0, fmt.Errorf("snap: truncated at byte %d", d.pos)
	}
	v := binary.LittleEndian.Uint32(d.buf[d.pos:])
	d.pos += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.pos+8 > len(d.buf) {
		return 0, fmt.Errorf("snap: truncated at byte %d", d.pos)
	}
	v := binary.LittleEndian.Uint64(d.buf[d.pos:])
	d.pos += 8
	return v, nil
}

// remaining bounds collection lengths: a corrupt length prefix larger than
// the bytes left cannot be valid, so it is rejected before any allocation.
func (d *decoder) remaining() int { return len(d.buf) - d.pos }

func (d *decoder) value(v reflect.Value) error {
	switch v.Kind() {
	case reflect.Bool:
		b, err := d.u8()
		if err != nil {
			return err
		}
		if b > 1 {
			return fmt.Errorf("snap: invalid bool %d at byte %d", b, d.pos-1)
		}
		v.SetBool(b == 1)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		u, err := d.u64()
		if err != nil {
			return err
		}
		if v.OverflowInt(int64(u)) {
			return fmt.Errorf("snap: %d overflows %s", int64(u), v.Type())
		}
		v.SetInt(int64(u))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		u, err := d.u64()
		if err != nil {
			return err
		}
		if v.OverflowUint(u) {
			return fmt.Errorf("snap: %d overflows %s", u, v.Type())
		}
		v.SetUint(u)
	case reflect.Float32, reflect.Float64:
		u, err := d.u64()
		if err != nil {
			return err
		}
		f := math.Float64frombits(u)
		if v.OverflowFloat(f) {
			return fmt.Errorf("snap: %g overflows %s", f, v.Type())
		}
		v.SetFloat(f)
	case reflect.String:
		n, err := d.u32()
		if err != nil {
			return err
		}
		if int(n) > d.remaining() {
			return fmt.Errorf("snap: string length %d exceeds %d remaining bytes", n, d.remaining())
		}
		v.SetString(string(d.buf[d.pos : d.pos+int(n)]))
		d.pos += int(n)
	case reflect.Slice:
		flag, err := d.u8()
		if err != nil {
			return err
		}
		if flag == 0 {
			v.SetZero()
			return nil
		}
		if flag != 1 {
			return fmt.Errorf("snap: invalid slice flag %d at byte %d", flag, d.pos-1)
		}
		n, err := d.u32()
		if err != nil {
			return err
		}
		// Every element costs at least one byte on the wire.
		if int(n) > d.remaining() {
			return fmt.Errorf("snap: slice length %d exceeds %d remaining bytes", n, d.remaining())
		}
		s := reflect.MakeSlice(v.Type(), int(n), int(n))
		for i := 0; i < int(n); i++ {
			if err := d.value(s.Index(i)); err != nil {
				return err
			}
		}
		v.Set(s)
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if err := d.value(v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Map:
		flag, err := d.u8()
		if err != nil {
			return err
		}
		if flag == 0 {
			v.SetZero()
			return nil
		}
		if flag != 1 {
			return fmt.Errorf("snap: invalid map flag %d at byte %d", flag, d.pos-1)
		}
		n, err := d.u32()
		if err != nil {
			return err
		}
		if int(n) > d.remaining() {
			return fmt.Errorf("snap: map length %d exceeds %d remaining bytes", n, d.remaining())
		}
		m := reflect.MakeMapWithSize(v.Type(), int(n))
		for i := 0; i < int(n); i++ {
			k := reflect.New(v.Type().Key()).Elem()
			if err := d.value(k); err != nil {
				return err
			}
			val := reflect.New(v.Type().Elem()).Elem()
			if err := d.value(val); err != nil {
				return err
			}
			m.SetMapIndex(k, val)
		}
		v.Set(m)
	case reflect.Pointer:
		flag, err := d.u8()
		if err != nil {
			return err
		}
		if flag == 0 {
			v.SetZero()
			return nil
		}
		if flag != 1 {
			return fmt.Errorf("snap: invalid pointer flag %d at byte %d", flag, d.pos-1)
		}
		p := reflect.New(v.Type().Elem())
		if err := d.value(p.Elem()); err != nil {
			return err
		}
		v.Set(p)
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			if !t.Field(i).IsExported() {
				return fmt.Errorf("snap: unexported field %s.%s", t, t.Field(i).Name)
			}
			if err := d.value(v.Field(i)); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("snap: unsupported kind %s (%s)", v.Kind(), v.Type())
	}
	return nil
}
