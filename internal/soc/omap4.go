package soc

import (
	"fmt"
	"math"
	"time"

	"k2/internal/power"
	"k2/internal/sim"
)

// Config carries the platform's calibration constants. Every value is
// either taken directly from the paper or calibrated so that the paper's
// measured latencies/throughputs (Tables 3–6) emerge from executing the
// real code paths; the comment on each field cites its source.
type Config struct {
	// RAMBytes is the size of shared physical memory (§4.2: domains share
	// all platform resources including RAM). 1 GB, typical for OMAP4
	// devices; K2 maps it all directly (§6.1).
	RAMBytes int64
	// PageSize is 4 KB, the DSM coherence granularity (§6.3).
	PageSize int

	// StrongCores / WeakCores: OMAP4 has dual Cortex-A9 and the shadow
	// kernel runs on one Cortex-M3 (§5.2).
	StrongCores int
	WeakCores   int
	// StrongFreqMHz: 350–1200 MHz (Table 1). Energy benchmarks fix
	// 350 MHz, the most efficient operating point (§9.2).
	StrongFreqMHz int
	// WeakFreqMHz: 100–200 MHz (Table 1); fixed at 200 MHz, its least
	// efficient point, because OMAP4 couples its voltage to the
	// interconnect (§9.2).
	WeakFreqMHz int

	// MailboxLatency is one-way hardware mail delivery; with send and
	// dispatch costs, the round trip lands near the measured ~5 µs (§5.1).
	MailboxLatency time.Duration
	// MailboxSendCost is the MMIO write to the mailbox registers — an
	// interconnect access, so the same wall-clock on either core.
	MailboxSendCost time.Duration

	// SpinlockAccess is one memory-mapped test-and-set or release over the
	// interconnect; SpinlockBackoff the spin-retry pause. Both burn active
	// power (spinning cannot sleep).
	SpinlockAccess  time.Duration
	SpinlockBackoff time.Duration

	// DMANsPerByte is the engine's effective per-byte time. Calibrated so
	// the Linux rows of Table 6 land near 40 MB/s.
	DMANsPerByte float64
	// DMAStrongWeight is the processor-sharing weight of strong-domain
	// channels relative to weak-domain ones, reproducing Table 6's
	// ~2.4:1 bandwidth split under contention.
	DMAStrongWeight float64

	// MemcpyNsPerByte / MemsetNsPerByte are reference-core costs of bulk
	// memory operations; together with DMANsPerByte they reproduce the
	// Table 6 Linux throughput curve (37.8 MB/s at 4 KB batches where the
	// benchmark is CPU-bound, 40.5 MB/s at 1 MB where it is IO-bound).
	MemcpyNsPerByte float64
	MemsetNsPerByte float64

	// CtxSwitch: a context switch takes 3–4 µs on the strong core (§8).
	CtxSwitch Work

	// InactiveTimeout: cores idle this long become inactive; 5 s as in the
	// paper's benchmarks (§9.2).
	InactiveTimeout time.Duration

	// StrongWakeLatency/Energy and WeakWakeLatency/Energy model the high
	// penalty of entering/exiting the active power state (§2.2):
	// PLL relock, cache refill, state restore. Calibrated, not measured
	// in the paper.
	StrongWakeLatency time.Duration
	StrongWakeEnergyJ float64
	WeakWakeLatency   time.Duration
	WeakWakeEnergyJ   float64

	// NumSpinlocks is the size of the hardware spinlock bank.
	NumSpinlocks int

	// Topology, when non-nil, describes the platform's coherence domains
	// explicitly (one strong + N weak). When nil, the two-domain OMAP4
	// topology is derived from the scalar fields above.
	Topology Topology

	// Reliable, when non-nil, enables the mailbox's reliable transport
	// (sequence numbers, acks, retransmission, receiver dedup) with the
	// given parameters. Nil keeps the default perfect fabric.
	Reliable *ReliableParams
}

// Power constants from Table 3, in mW.
const (
	a9ActiveMW350  = 79.8
	a9ActiveMW1200 = 672
	a9IdleMW       = 25.2
	m3ActiveMW200  = 21.1
	m3IdleMW       = 3.8
	inactiveMW     = 0.05 // "less than 0.1 mW when inactive"
)

// a9ActiveMW interpolates the A9 active power between the two Table 3
// anchors with a power-law DVFS curve (exponent fitted to the anchors).
func a9ActiveMW(freqMHz int) power.Milliwatts {
	switch freqMHz {
	case 350:
		return a9ActiveMW350
	case 1200:
		return a9ActiveMW1200
	}
	exp := math.Log(a9ActiveMW1200/a9ActiveMW350) / math.Log(1200.0/350.0)
	return power.Milliwatts(a9ActiveMW350 * math.Pow(float64(freqMHz)/350.0, exp))
}

// speedOf returns execution speed relative to the reference core
// (Cortex-A9 at 1200 MHz). The M3 at 200 MHz is 12x slower than the
// reference, the ratio exhibited by Table 4's small-allocation latencies
// (1 µs on main vs 12 µs on shadow); this also places the weak core's peak
// throughput at ~29 % of the strong core at 350 MHz, inside the paper's
// observed 20–70 % band (§9.2).
func speedOf(kind CoreKind, freqMHz int) float64 {
	switch kind {
	case CortexA9:
		return float64(freqMHz) / 1200.0
	case CortexM3:
		return float64(freqMHz) / 200.0 / 12.0
	default:
		panic("soc: unknown core kind")
	}
}

// A9ActivePowerMW exposes the strong core's DVFS curve (Table 3 anchors
// with power-law interpolation) for the Figure 1 trend experiment.
func A9ActivePowerMW(freqMHz int) power.Milliwatts { return a9ActiveMW(freqMHz) }

// A9IdlePowerMW returns the strong domain's idle power (Table 3).
func A9IdlePowerMW() power.Milliwatts { return a9IdleMW }

// M3ActivePowerMW returns the weak core's active power at 200 MHz (Table 3).
func M3ActivePowerMW() power.Milliwatts { return m3ActiveMW200 }

// M3IdlePowerMW returns the weak domain's idle power (Table 3).
func M3IdlePowerMW() power.Milliwatts { return m3IdleMW }

// Speed exposes relative core speed for experiments.
func Speed(kind CoreKind, freqMHz int) float64 { return speedOf(kind, freqMHz) }

// DefaultConfig returns the OMAP4-like platform configuration.
func DefaultConfig() Config {
	return Config{
		RAMBytes:          1 << 30,
		PageSize:          4096,
		StrongCores:       2,
		WeakCores:         1,
		StrongFreqMHz:     1200,
		WeakFreqMHz:       200,
		MailboxLatency:    2100 * time.Nanosecond,
		MailboxSendCost:   250 * time.Nanosecond,
		SpinlockAccess:    150 * time.Nanosecond,
		SpinlockBackoff:   400 * time.Nanosecond,
		DMANsPerByte:      23.5,
		DMAStrongWeight:   2.4,
		MemcpyNsPerByte:   1.2,
		MemsetNsPerByte:   1.2,
		CtxSwitch:         Work(3500 * time.Nanosecond),
		InactiveTimeout:   5 * time.Second,
		StrongWakeLatency: 4 * time.Millisecond,
		StrongWakeEnergyJ: 1.5e-3,
		WeakWakeLatency:   1 * time.Millisecond,
		WeakWakeEnergyJ:   5e-5,
		NumSpinlocks:      32,
	}
}

// SoC is the simulated system-on-chip: one strong domain plus N weak
// domains, a routed mailbox fabric, per-domain interrupt controllers, a
// hardware spinlock bank and a shared DMA engine.
type SoC struct {
	Eng *sim.Engine
	Cfg Config

	Domains   []*Domain
	IRQ       []*IRQController
	Mailbox   *Mailbox
	Spinlocks *SpinlockBank
	DMA       *DMAEngine

	nextIRQ IRQLine
}

// Lookahead returns the platform's minimum cross-domain event latency: no
// action in one domain can affect another sooner than one mailbox delivery.
// It is the conservative-lookahead bound a parallel engine (internal/pdes)
// may advance each domain's event partition without synchronizing.
func (c Config) Lookahead() time.Duration { return c.MailboxLatency }

// New constructs the SoC from the config's topology with every domain awake
// (as at boot).
func New(eng *sim.Engine, cfg Config) *SoC {
	s := &SoC{Eng: eng, Cfg: cfg, nextIRQ: irqFirstDynamic}
	topo := cfg.EffectiveTopology()
	if err := topo.Validate(); err != nil {
		panic(err)
	}

	// Partition the engine's event queue per coherence domain — partition 0
	// carries shared/untagged traffic, partition id+1 is domain id — and
	// register the lookahead bound a windowed scheduler runs under. Both are
	// inert bookkeeping unless a pdes scheduler is attached.
	eng.ConfigurePartitions(len(topo) + 1)
	eng.SetLookahead(cfg.Lookahead())

	for id, spec := range topo {
		d := newDomain(eng, DomainID(id), spec.Name, spec.Profile)
		d.WakeLatency = spec.WakeLatency
		d.WakeEnergyJ = spec.WakeEnergyJ
		d.InactiveTimeout = spec.InactiveTimeout
		if d.InactiveTimeout == 0 {
			d.InactiveTimeout = cfg.InactiveTimeout
		}
		d.activeMul = spec.DVFS
		d.DMAWeight = spec.DMAWeight
		if d.DMAWeight == 0 {
			d.DMAWeight = 1.0
		}
		for i := 0; i < spec.Cores; i++ {
			c := &Core{ID: i, Kind: spec.Kind, FreqMHz: spec.FreqMHz, Domain: d}
			c.speed = speedOf(spec.Kind, spec.FreqMHz)
			d.Cores = append(d.Cores, c)
		}
		s.Domains = append(s.Domains, d)
		s.IRQ = append(s.IRQ, newIRQController(d))
	}

	// Domains boot awake; start their inactivity countdown immediately.
	for _, d := range s.Domains {
		d.idleTimer.Reset(d.InactiveTimeout)
	}

	s.Mailbox = newMailbox(s)
	s.Spinlocks = newSpinlockBank(s, cfg.NumSpinlocks)
	s.DMA = newDMAEngine(s)
	return s
}

// NumDomains returns how many coherence domains the platform has.
func (s *SoC) NumDomains() int { return len(s.Domains) }

// DomainPartition returns the engine event-partition of domain id; partition
// 0 is reserved for shared (untagged) traffic.
func (s *SoC) DomainPartition(id DomainID) int { return int(id) + 1 }

// PartitionName names engine event-partition i under the default topology
// naming ("shared", "strong", "weak", "weak2", ...). Layers that hold only
// partition counters — no live SoC — use this to label them; it matches
// PartitionNames for every topology built by WithWeakDomains.
func PartitionName(i int) string {
	switch i {
	case 0:
		return "shared"
	case 1:
		return "strong"
	case 2:
		return "weak"
	default:
		return fmt.Sprintf("weak%d", i-1)
	}
}

// PartitionNames returns one display name per engine event-partition, index
// aligned with sim's PartitionDispatches: "shared" then each domain's name.
func (s *SoC) PartitionNames() []string {
	names := make([]string, 0, len(s.Domains)+1)
	names = append(names, "shared")
	for _, d := range s.Domains {
		names = append(names, d.Name)
	}
	return names
}

// afterIn schedules fn after d, tagging the event with domain id's home
// partition so a partitioned engine files it under that domain's sub-heap.
// Routing is a balance hint only — dispatch order is unaffected.
func (s *SoC) afterIn(id DomainID, d time.Duration, fn func()) {
	prev := s.Eng.SetEventPartition(s.DomainPartition(id))
	s.Eng.After(d, fn)
	s.Eng.SetEventPartition(prev)
}

// WeakDomains returns the IDs of all weak domains in ascending order.
func (s *SoC) WeakDomains() []DomainID {
	out := make([]DomainID, 0, len(s.Domains)-1)
	for id := Weak; int(id) < len(s.Domains); id++ {
		out = append(out, id)
	}
	return out
}

// Core returns core i of domain id.
func (s *SoC) Core(id DomainID, i int) *Core { return s.Domains[id].Cores[i] }

// Pages returns the number of physical page frames.
func (s *SoC) Pages() int { return int(s.Cfg.RAMBytes) / s.Cfg.PageSize }

// MemcpyWork returns the reference work of copying n bytes.
func (s *SoC) MemcpyWork(n int64) Work {
	return Work(float64(n) * s.Cfg.MemcpyNsPerByte)
}

// MemsetWork returns the reference work of clearing n bytes.
func (s *SoC) MemsetWork(n int64) Work {
	return Work(float64(n) * s.Cfg.MemsetNsPerByte)
}
