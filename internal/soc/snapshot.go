package soc

import (
	"fmt"
	"sort"

	"k2/internal/power"
	"k2/internal/sim"
)

// DomainSnap is one domain's checkpointable state. The idle timer is captured
// as (armed, absolute deadline) and re-armed on restore; the pending heap
// event itself is not serialized.
type DomainSnap struct {
	State      int
	BusyCores  int
	WakeCount  int
	IdleStart  sim.Time
	Hung       bool
	CrashCount int
	ActiveMW   power.Milliwatts
	TimerArmed bool
	TimerAt    sim.Time
	CoreFreqs  []int
	Rail       power.RailState
}

// IRQSnap is one interrupt controller's checkpointable state.
type IRQSnap struct {
	Masked    []int // masked lines, ascending
	Delivered int
}

// RelLinkSnap is one reliable-transport link's checkpointable state.
type RelLinkSnap struct {
	NextSeq uint64
	Seen    []uint64 // delivered sequence numbers, ascending
}

// MailboxSnap is the mailbox fabric's checkpointable state. Inboxes must be
// empty and no reliable send in flight at capture, so only counters and link
// sequence state are recorded.
type MailboxSnap struct {
	Sent   [][]int
	NextSq uint32
	Stats  MailboxStats
	Links  [][]RelLinkSnap // nil when the reliable transport is off
}

// SpinlockSnap is one hardware spinlock's checkpointable state.
type SpinlockSnap struct {
	Held          bool
	Holder        int
	BrokenMask    uint64
	Acquisitions  int
	Contended     int
	StaleReleases int
}

// DMASnap is the DMA engine's checkpointable state; no transfer may be
// active at capture.
type DMASnap struct {
	LastUpdate sim.Time
	Gen        int
	Served     []int
	BytesMoved []int64
}

// SoCState is the whole platform's checkpointable state.
type SoCState struct {
	Domains   []DomainSnap
	IRQ       []IRQSnap
	Mailbox   MailboxSnap
	Spinlocks []SpinlockSnap
	DMA       DMASnap
	NextIRQ   int
}

// CaptureState records the SoC's state at a quiesce point. It returns an
// error when the platform is not quiescent: a domain mid-wake (its completion
// event cannot be re-created), pending wake hooks, undelivered mail, reliable
// sends in flight, a held spinlock, or an active DMA transfer.
func (s *SoC) CaptureState() (SoCState, error) {
	var st SoCState
	for _, d := range s.Domains {
		if d.state == DomWaking {
			return st, fmt.Errorf("soc: domain %s is mid-wake", d.Name)
		}
		if len(d.awakeHooks) > 0 {
			return st, fmt.Errorf("soc: domain %s has %d pending wake hooks", d.Name, len(d.awakeHooks))
		}
		ds := DomainSnap{
			State:      int(d.state),
			BusyCores:  d.busyCores,
			WakeCount:  d.wakeCount,
			IdleStart:  d.idleStart,
			Hung:       d.hung,
			CrashCount: d.crashCount,
			ActiveMW:   d.Profile.Active,
			TimerArmed: d.idleTimer.Armed(),
			TimerAt:    d.idleTimer.Deadline(),
			Rail:       d.Rail.CaptureState(),
		}
		for _, c := range d.Cores {
			ds.CoreFreqs = append(ds.CoreFreqs, c.FreqMHz)
		}
		st.Domains = append(st.Domains, ds)
	}
	for id, c := range s.IRQ {
		if n := s.Mailbox.Pending(DomainID(id)); n > 0 {
			return st, fmt.Errorf("soc: %d undelivered mails for %v", n, DomainID(id))
		}
		is := IRQSnap{Delivered: c.Delivered}
		for line := range c.masked {
			is.Masked = append(is.Masked, int(line))
		}
		sort.Ints(is.Masked)
		st.IRQ = append(st.IRQ, is)
	}
	mb := s.Mailbox
	if mb.relOutstanding > 0 {
		return st, fmt.Errorf("soc: %d reliable sends in flight", mb.relOutstanding)
	}
	st.Mailbox = MailboxSnap{NextSq: mb.nextSq, Stats: mb.Stats}
	for _, row := range mb.sent {
		st.Mailbox.Sent = append(st.Mailbox.Sent, append([]int(nil), row...))
	}
	if mb.links != nil {
		for _, row := range mb.links {
			var out []RelLinkSnap
			for _, l := range row {
				ls := RelLinkSnap{NextSeq: l.nextSeq}
				for seq := range l.seen {
					ls.Seen = append(ls.Seen, seq)
				}
				sort.Slice(ls.Seen, func(i, j int) bool { return ls.Seen[i] < ls.Seen[j] })
				out = append(out, ls)
			}
			st.Mailbox.Links = append(st.Mailbox.Links, out)
		}
	}
	for _, l := range s.Spinlocks.locks {
		if l.held {
			return st, fmt.Errorf("soc: spinlock %d held by %v", l.id, l.holder)
		}
		st.Spinlocks = append(st.Spinlocks, SpinlockSnap{
			Held: l.held, Holder: int(l.holder), BrokenMask: l.brokenMask,
			Acquisitions: l.Acquisitions, Contended: l.Contended, StaleReleases: l.StaleReleases,
		})
	}
	if n := s.DMA.Active(); n > 0 {
		return st, fmt.Errorf("soc: %d DMA transfers active", n)
	}
	st.DMA = DMASnap{
		LastUpdate: s.DMA.lastUpdate,
		Gen:        s.DMA.gen,
		Served:     append([]int(nil), s.DMA.Served...),
		BytesMoved: append([]int64(nil), s.DMA.BytesMoved...),
	}
	st.NextIRQ = int(s.nextIRQ)
	return st, nil
}

// RestoreState rewinds a freshly constructed SoC (same config) onto a
// captured state. The engine clock must already be restored: idle timers are
// re-armed at their captured absolute deadlines, in domain order, so that
// same-deadline ties dispatch in the same order as the original run.
func (s *SoC) RestoreState(st SoCState) error {
	if len(st.Domains) != len(s.Domains) {
		return fmt.Errorf("soc: snapshot has %d domains, platform %d", len(st.Domains), len(s.Domains))
	}
	for id, d := range s.Domains {
		ds := st.Domains[id]
		if len(ds.CoreFreqs) != len(d.Cores) {
			return fmt.Errorf("soc: snapshot domain %s has %d cores, platform %d", d.Name, len(ds.CoreFreqs), len(d.Cores))
		}
		d.state = DomainState(ds.State)
		d.busyCores = ds.BusyCores
		d.wakeCount = ds.WakeCount
		d.idleStart = ds.IdleStart
		d.hung = ds.Hung
		d.crashCount = ds.CrashCount
		d.Profile.Active = ds.ActiveMW
		d.awakeHooks = nil
		for i, c := range d.Cores {
			c.FreqMHz = ds.CoreFreqs[i]
			c.speed = speedOf(c.Kind, c.FreqMHz)
		}
		if ds.TimerArmed {
			d.idleTimer.ResetAt(ds.TimerAt)
		} else {
			d.idleTimer.Stop()
		}
		d.Rail.RestoreState(ds.Rail)
	}
	for id, c := range s.IRQ {
		is := st.IRQ[id]
		c.Delivered = is.Delivered
		c.masked = make(map[IRQLine]bool, len(is.Masked))
		for _, line := range is.Masked {
			c.masked[IRQLine(line)] = true
		}
	}
	mb := s.Mailbox
	mb.nextSq = st.Mailbox.NextSq
	mb.Stats = st.Mailbox.Stats
	mb.relOutstanding = 0
	for i := range mb.sent {
		copy(mb.sent[i], st.Mailbox.Sent[i])
	}
	if st.Mailbox.Links != nil {
		if mb.links == nil {
			return fmt.Errorf("soc: snapshot has reliable links but transport is off")
		}
		for i, row := range st.Mailbox.Links {
			for j, ls := range row {
				l := mb.links[i][j]
				l.nextSeq = ls.NextSeq
				l.seen = make(map[uint64]bool, len(ls.Seen))
				for _, seq := range ls.Seen {
					l.seen[seq] = true
				}
			}
		}
	}
	for i, l := range s.Spinlocks.locks {
		ls := st.Spinlocks[i]
		l.held = ls.Held
		l.holder = DomainID(ls.Holder)
		l.brokenMask = ls.BrokenMask
		l.Acquisitions = ls.Acquisitions
		l.Contended = ls.Contended
		l.StaleReleases = ls.StaleReleases
	}
	s.DMA.lastUpdate = st.DMA.LastUpdate
	s.DMA.gen = st.DMA.Gen
	copy(s.DMA.Served, st.DMA.Served)
	copy(s.DMA.BytesMoved, st.DMA.BytesMoved)
	s.DMA.active = s.DMA.active[:0]
	s.nextIRQ = IRQLine(st.NextIRQ)
	return nil
}
