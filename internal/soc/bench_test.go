package soc

import (
	"testing"

	"k2/internal/sim"
)

// BenchmarkMailboxRoundTrip measures one full mailbox ping-pong between the
// strong and weak domains: two sends, two interrupt-driven deliveries and
// two receiver wakeups per iteration, on the default (perfect) fabric.
func BenchmarkMailboxRoundTrip(b *testing.B) {
	e := sim.NewEngine()
	s := New(e, DefaultConfig())
	mb := s.Mailbox
	e.Spawn("strong", func(p *sim.Proc) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mb.SendAsync(Strong, Weak, NewMessage(MsgGeneric, uint32(i)&0xFFFFF, mb.NextSeq()))
			mb.Recv(p, Strong)
		}
	})
	e.Spawn("weak", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			m := mb.Recv(p, Weak)
			mb.SendAsync(Weak, Strong, NewMessage(MsgGeneric, m.Payload(), mb.NextSeq()))
		}
	})
	if err := e.RunAll(); err != nil {
		b.Fatal(err)
	}
}
