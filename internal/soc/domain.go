package soc

import (
	"fmt"
	"time"

	"k2/internal/power"
	"k2/internal/sim"
)

// DomainID names a coherence domain. The paper calls them strong and weak
// (§1) to distinguish them from big/little cores within one domain. Domain 0
// is always the strong domain; domains 1..N are weak domains.
type DomainID int

const (
	// Strong is the high-performance domain (dual Cortex-A9 on OMAP4).
	Strong DomainID = iota
	// Weak is the first (on OMAP4: the only) low-power domain.
	Weak
)

func (d DomainID) String() string {
	switch {
	case d == Strong:
		return "strong"
	case d == Weak:
		return "weak"
	default:
		return fmt.Sprintf("weak%d", int(d))
	}
}

// DomainState is the power state of a domain (§4.2: cores are taken online
// and offline from time to time; efficiency depends on how long domains
// remain inactive and how often they are woken).
type DomainState int

const (
	// DomInactive: the domain is suspended, drawing near-zero power.
	DomInactive DomainState = iota
	// DomWaking: the domain is paying its wake penalty.
	DomWaking
	// DomAwake: the domain runs; it draws active power while any core
	// executes and idle power otherwise.
	DomAwake
	// DomCrashed: the domain's kernel has crashed or hung (fault
	// injection). Its cores stop making progress, mail addressed to it is
	// lost, and it stays in this state until Reboot.
	DomCrashed
)

func (s DomainState) String() string {
	switch s {
	case DomInactive:
		return "inactive"
	case DomWaking:
		return "waking"
	case DomCrashed:
		return "crashed"
	default:
		return "awake"
	}
}

// Domain is one cache-coherence domain: a set of cores with hardware
// coherence among themselves and none with other domains (§4.2).
type Domain struct {
	ID    DomainID
	Name  string
	Cores []*Core
	Rail  *power.Rail

	// Profile gives the rail levels; Active may be updated by DVFS.
	Profile power.Profile

	// WakeLatency and WakeEnergyJ model the high penalty of entering the
	// active power state (§2.2).
	WakeLatency time.Duration
	WakeEnergyJ float64

	// InactiveTimeout is how long the domain stays idle before suspending
	// (5 s in the paper's benchmarks, §9.2).
	InactiveTimeout time.Duration

	// DMAWeight is the processor-sharing weight of this domain's DMA
	// channels (Table 6's ~2.4:1 strong:weak bandwidth split).
	DMAWeight float64

	// CanSleep, if non-nil, lets the OS veto suspension (e.g. while it
	// still has runnable threads).
	CanSleep func() bool
	// OnWake and OnSleep are OS hooks; K2 uses them to flip shared
	// interrupt masks between kernels (§7).
	OnWake  func()
	OnSleep func()

	eng        *sim.Engine
	state      DomainState
	busyCores  int
	awakeGate  *sim.Gate
	idleTimer  *sim.Timer
	wakeCount  int
	activeMul  func(freqMHz int) power.Milliwatts // DVFS curve, may be nil
	awakeHooks []func()                           // engine-context callbacks run once awake
	idleStart  sim.Time                           // when busyCores last dropped to zero
	hung       bool                               // crashed as a hang: rail stays at idle power
	crashCount int
}

// IdleFor returns how long the domain has had no busy core; zero while any
// core executes. K2's main kernel uses this to decide whether to service
// DSM requests immediately or defer them to bottom halves (§6.3).
func (d *Domain) IdleFor() time.Duration {
	if d.busyCores > 0 {
		return 0
	}
	return d.eng.Now().Sub(d.idleStart)
}

// whenAwake runs fn (engine context) immediately if the domain is awake, or
// as soon as the in-progress or triggered wake completes. It reports whether
// fn was (or will be) run: deliveries to a crashed domain are lost.
func (d *Domain) whenAwake(fn func()) bool {
	if d.state == DomCrashed {
		return false
	}
	if d.state == DomAwake {
		fn()
		return true
	}
	d.Wake()
	d.awakeHooks = append(d.awakeHooks, fn)
	return true
}

func newDomain(eng *sim.Engine, id DomainID, name string, prof power.Profile) *Domain {
	d := &Domain{
		ID:        id,
		Name:      name,
		Profile:   prof,
		eng:       eng,
		state:     DomAwake, // domains boot awake
		awakeGate: sim.NewGate(eng),
		// A freshly booted domain counts as long-idle so that, e.g., the
		// DSM's idle-threshold check does not defer on an unloaded system.
		idleStart: sim.Time(-int64(time.Hour)),
	}
	d.Rail = power.NewRail(eng, name, prof.Idle)
	d.idleTimer = sim.NewTimer(eng, d.tryInactive)
	return d
}

// State returns the domain's current power state.
func (d *Domain) State() DomainState { return d.state }

// Awake reports whether the domain is in the awake state.
func (d *Domain) Awake() bool { return d.state == DomAwake }

// WakeCount returns how many inactive-to-awake transitions have occurred.
func (d *Domain) WakeCount() int { return d.wakeCount }

// BusyCores returns the number of cores currently executing.
func (d *Domain) BusyCores() int { return d.busyCores }

func (d *Domain) refreshPower() {
	if d.activeMul != nil && len(d.Cores) > 0 {
		d.Profile.Active = d.activeMul(d.Cores[0].FreqMHz)
	}
	d.settleRail()
}

func (d *Domain) settleRail() {
	switch d.state {
	case DomInactive:
		d.Rail.SetLevel(d.Profile.Inactive)
	case DomCrashed:
		// A crashed (powered-off) domain draws inactive power; a hung
		// kernel keeps its rail at idle, which is precisely what makes a
		// hang expensive to leave undetected.
		if d.hung {
			d.Rail.SetLevel(d.Profile.Idle)
		} else {
			d.Rail.SetLevel(d.Profile.Inactive)
		}
	case DomWaking:
		d.Rail.SetLevel(d.Profile.Active)
	default:
		if d.busyCores > 0 {
			d.Rail.SetLevel(d.Profile.Active)
		} else {
			d.Rail.SetLevel(d.Profile.Idle)
		}
	}
}

func (d *Domain) beginBusy() {
	if !d.Awake() {
		panic("soc: Exec on a domain that is not awake: " + d.Name)
	}
	d.busyCores++
	d.settleRail()
}

func (d *Domain) endBusy() {
	d.busyCores--
	if d.busyCores < 0 {
		panic("soc: endBusy underflow on " + d.Name)
	}
	if d.busyCores == 0 {
		d.idleStart = d.eng.Now()
	}
	// Note: raw execution does NOT restart the inactivity countdown —
	// brief interrupt-handler work must not keep a domain awake forever
	// (a periodic sensor would otherwise pin the strong domain active).
	// The countdown follows *thread* activity: the scheduler calls
	// KickIdleTimer when a thread releases its core, mirroring
	// wakelock-style suspend policies. If the timer fires mid-execution,
	// tryInactive sees busy cores and re-arms.
	d.settleRail()
}

// BeginSpin marks a core of the domain busy without executing timed work:
// a spin-wait burns active power until EndSpin. The domain must be awake.
func (d *Domain) BeginSpin() { d.beginBusy() }

// EndSpin ends a BeginSpin.
func (d *Domain) EndSpin() { d.endBusy() }

// KickIdleTimer restarts the inactivity countdown; the OS calls it when a
// thread releases its core (scheduler-level activity).
func (d *Domain) KickIdleTimer() {
	if d.state == DomAwake {
		d.idleTimer.Reset(d.InactiveTimeout)
	}
}

func (d *Domain) tryInactive() {
	if d.state != DomAwake || d.busyCores > 0 {
		return
	}
	if d.CanSleep != nil && !d.CanSleep() {
		// Re-arm: the OS is not ready; try again after another timeout.
		d.idleTimer.Reset(d.InactiveTimeout)
		return
	}
	d.state = DomInactive
	d.settleRail()
	if d.OnSleep != nil {
		d.OnSleep()
	}
}

// Wake begins the inactive-to-awake transition if needed. Safe to call from
// engine context (e.g. interrupt delivery).
func (d *Domain) Wake() {
	if d.state != DomInactive {
		return
	}
	d.state = DomWaking
	d.wakeCount++
	d.settleRail()
	d.eng.After(d.WakeLatency, func() {
		d.state = DomAwake
		d.Rail.AddEnergyJ(d.WakeEnergyJ)
		d.settleRail()
		d.idleTimer.Reset(d.InactiveTimeout)
		if d.OnWake != nil {
			d.OnWake()
		}
		hooks := d.awakeHooks
		d.awakeHooks = nil
		for _, fn := range hooks {
			fn()
		}
		d.awakeGate.Open()
	})
}

// EnsureAwake wakes the domain if necessary and blocks p until it is awake.
// If the domain is crashed, p blocks until a Reboot brings it back.
func (d *Domain) EnsureAwake(p *sim.Proc) {
	if d.state == DomAwake {
		return
	}
	d.Wake()
	for d.state != DomAwake {
		d.awakeGate.Wait(p)
	}
}

// Crashed reports whether the domain is in the crashed state.
func (d *Domain) Crashed() bool { return d.state == DomCrashed }

// CrashCount returns how many times the domain has crashed or hung.
func (d *Domain) CrashCount() int { return d.crashCount }

// Crash kills the domain as if its kernel died and its rail was cut: cores
// stop making progress (procs freeze at their next instruction and resume
// only after Reboot), pending wake hooks and future mail are lost, and the
// rail drops to inactive power. Safe to call from engine context; a no-op if
// the domain is already crashed.
func (d *Domain) Crash() { d.halt(false) }

// Hang is Crash with the rail stuck at idle power: the kernel spins dead but
// the silicon stays on, so a hang costs energy until a watchdog notices.
func (d *Domain) Hang() { d.halt(true) }

func (d *Domain) halt(hung bool) {
	if d.state == DomCrashed {
		return
	}
	d.state = DomCrashed
	d.hung = hung
	d.crashCount++
	d.idleTimer.Stop()
	// In-flight wakes and queued deliveries die with the kernel.
	d.awakeHooks = nil
	d.settleRail()
}

// Reboot brings a crashed domain back: it pays the ordinary wake penalty and
// then runs as a freshly booted kernel (frozen procs resume, OnWake fires).
// A no-op unless the domain is crashed.
func (d *Domain) Reboot() {
	if d.state != DomCrashed {
		return
	}
	d.hung = false
	d.state = DomInactive
	d.Wake()
}

// freezeWhileCrashed parks p until the domain is rebooted; an immediate
// return if the domain is not crashed.
func (d *Domain) freezeWhileCrashed(p *sim.Proc) {
	for d.state == DomCrashed {
		d.awakeGate.Wait(p)
	}
}
