package soc

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"k2/internal/sim"
)

func newTestSoC() (*sim.Engine, *SoC) {
	e := sim.NewEngine()
	return e, New(e, DefaultConfig())
}

func TestPlatformShape(t *testing.T) {
	_, s := newTestSoC()
	if got := len(s.Domains[Strong].Cores); got != 2 {
		t.Fatalf("strong cores = %d, want 2", got)
	}
	if got := len(s.Domains[Weak].Cores); got != 1 {
		t.Fatalf("weak cores = %d, want 1", got)
	}
	if k := s.Core(Strong, 0).Kind; k != CortexA9 {
		t.Fatalf("strong core kind = %v", k)
	}
	if k := s.Core(Weak, 0).Kind; k != CortexM3 {
		t.Fatalf("weak core kind = %v", k)
	}
	if s.Pages() != (1<<30)/4096 {
		t.Fatalf("pages = %d", s.Pages())
	}
}

func TestSpeedRatios(t *testing.T) {
	// Table 4: 4 KB allocation is 1 µs on main, 12 µs on shadow, so the
	// weak core must be 12x slower than the reference.
	if got := speedOf(CortexM3, 200); math.Abs(got-1.0/12) > 1e-12 {
		t.Fatalf("M3@200 speed = %v, want 1/12", got)
	}
	if got := speedOf(CortexA9, 1200); got != 1.0 {
		t.Fatalf("A9@1200 speed = %v, want 1", got)
	}
	// Weak peak throughput must land in the paper's 20-70% band of the
	// strong core at 350 MHz (§9.2).
	ratio := speedOf(CortexM3, 200) / speedOf(CortexA9, 350)
	if ratio < 0.20 || ratio > 0.70 {
		t.Fatalf("weak/strong@350 = %v, want within [0.2, 0.7]", ratio)
	}
}

func TestA9PowerAnchorsMatchTable3(t *testing.T) {
	if got := a9ActiveMW(350); got != 79.8 {
		t.Fatalf("active@350 = %v, want 79.8", got)
	}
	if got := a9ActiveMW(1200); got != 672.0 {
		t.Fatalf("active@1200 = %v, want 672", got)
	}
	// Interpolation must be monotone between the anchors.
	prev := a9ActiveMW(350)
	for f := 400; f <= 1200; f += 50 {
		cur := a9ActiveMW(f)
		if cur <= prev {
			t.Fatalf("active power not increasing at %d MHz", f)
		}
		prev = cur
	}
}

func TestExecScalesWithSpeed(t *testing.T) {
	e, s := newTestSoC()
	var strongDur, weakDur time.Duration
	e.Spawn("strong", func(p *sim.Proc) {
		start := p.Now()
		s.Core(Strong, 0).Exec(p, Work(time.Millisecond))
		strongDur = p.Now().Sub(start)
	})
	e.Spawn("weak", func(p *sim.Proc) {
		start := p.Now()
		s.Core(Weak, 0).Exec(p, Work(time.Millisecond))
		weakDur = p.Now().Sub(start)
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if strongDur != time.Millisecond {
		t.Fatalf("strong exec = %v, want 1ms", strongDur)
	}
	if weakDur != 12*time.Millisecond {
		t.Fatalf("weak exec = %v, want 12ms", weakDur)
	}
}

func TestDomainEnergyActiveVsIdle(t *testing.T) {
	e, s := newTestSoC()
	d := s.Domains[Strong]
	d.InactiveTimeout = time.Hour // keep awake for the whole test
	e.Spawn("worker", func(p *sim.Proc) {
		s.Core(Strong, 0).Exec(p, Work(time.Second)) // 1 s busy at 1200 MHz
		p.Sleep(time.Second)                         // 1 s idle
	})
	if err := e.Run(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// 1 s at 672 mW + 1 s at 25.2 mW = 0.6972 J
	got := d.Rail.EnergyJ()
	if math.Abs(got-0.6972) > 1e-6 {
		t.Fatalf("energy = %v J, want 0.6972", got)
	}
}

func TestDomainInactiveAfterTimeoutAndWakePenalty(t *testing.T) {
	e, s := newTestSoC()
	d := s.Domains[Weak]
	e.Spawn("task", func(p *sim.Proc) {
		s.Core(Weak, 0).Exec(p, Work(time.Millisecond))
	})
	if err := e.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if d.State() != DomInactive {
		t.Fatalf("state = %v after timeout, want inactive", d.State())
	}
	// Waking pays the latency and energy penalty.
	before := d.Rail.EnergyJ()
	woke := sim.Time(-1)
	e.Spawn("waker", func(p *sim.Proc) {
		d.EnsureAwake(p)
		woke = p.Now()
	})
	start := e.Now()
	if err := e.Run(sim.Time(time.Minute + time.Second)); err != nil {
		t.Fatal(err)
	}
	if d.WakeCount() != 1 {
		t.Fatalf("wake count = %d, want 1", d.WakeCount())
	}
	if got := woke.Sub(start); got != s.Cfg.WeakWakeLatency {
		t.Fatalf("wake latency = %v, want %v", got, s.Cfg.WeakWakeLatency)
	}
	gained := d.Rail.EnergyJ() - before
	if gained < s.Cfg.WeakWakeEnergyJ {
		t.Fatalf("wake energy = %v J, want >= %v", gained, s.Cfg.WeakWakeEnergyJ)
	}
}

func TestCanSleepVeto(t *testing.T) {
	e, s := newTestSoC()
	d := s.Domains[Strong]
	allow := false
	d.CanSleep = func() bool { return allow }
	e.Spawn("task", func(p *sim.Proc) {
		s.Core(Strong, 0).Exec(p, Work(time.Millisecond))
	})
	if err := e.Run(sim.Time(7 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if d.State() != DomAwake {
		t.Fatalf("domain suspended despite veto")
	}
	allow = true
	if err := e.Run(sim.Time(20 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if d.State() != DomInactive {
		t.Fatalf("domain did not suspend after veto lifted; state=%v", d.State())
	}
}

func TestMessageEncodingRoundTrip(t *testing.T) {
	f := func(tRaw uint8, payload uint32, seq uint32) bool {
		typ := MsgType(tRaw % 8)
		m := NewMessage(typ, payload&0xFFFFF, seq&0x1FF)
		return m.Type() == typ && m.Payload() == payload&0xFFFFF && m.Seq() == seq&0x1FF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMailboxRoundTripNearFiveMicros(t *testing.T) {
	e, s := newTestSoC()
	// Echo server on the weak domain.
	e.Spawn("weak-echo", func(p *sim.Proc) {
		msg := s.Mailbox.Recv(p, Weak)
		s.Mailbox.Send(p, s.Core(Weak, 0), Strong, NewMessage(MsgGeneric, msg.Payload(), msg.Seq()))
	})
	var rtt time.Duration
	e.Spawn("strong-ping", func(p *sim.Proc) {
		start := p.Now()
		s.Mailbox.Send(p, s.Core(Strong, 0), Weak, NewMessage(MsgGeneric, 42, 1))
		reply := s.Mailbox.Recv(p, Strong)
		rtt = p.Now().Sub(start)
		if reply.Payload() != 42 {
			t.Errorf("echo payload = %d", reply.Payload())
		}
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	// §5.1: "We measured the message round-trip time as around 5 µs."
	if rtt < 4*time.Microsecond || rtt > 8*time.Microsecond {
		t.Fatalf("mailbox round trip = %v, want ~5µs", rtt)
	}
}

func TestMailboxInOrderDelivery(t *testing.T) {
	e, s := newTestSoC()
	var got []uint32
	e.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, s.Mailbox.Recv(p, Weak).Payload())
		}
	})
	e.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			s.Mailbox.Send(p, s.Core(Strong, 0), Weak, NewMessage(MsgGeneric, uint32(i), uint32(i)))
		}
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("out of order delivery: got %v", got)
		}
	}
}

func TestMailboxWakesInactiveDomain(t *testing.T) {
	e, s := newTestSoC()
	if err := e.Run(sim.Time(time.Minute)); err != nil { // let weak go inactive
		t.Fatal(err)
	}
	if s.Domains[Weak].State() != DomInactive {
		t.Fatalf("weak not inactive")
	}
	received := false
	e.Spawn("recv", func(p *sim.Proc) {
		s.Mailbox.Recv(p, Weak)
		received = true
	})
	s.Mailbox.SendAsync(Strong, Weak, NewMessage(MsgGeneric, 1, 1))
	if err := e.Run(sim.Time(2 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if !received {
		t.Fatal("message not delivered")
	}
	if s.Domains[Weak].WakeCount() != 1 {
		t.Fatalf("mailbox did not wake the domain")
	}
}

func TestSpinlockCrossDomainContention(t *testing.T) {
	e, s := newTestSoC()
	lk := s.Spinlocks.Lock(0)
	holders := 0
	maxHolders := 0
	crit := func(p *sim.Proc, c *Core) {
		lk.Acquire(p, c)
		holders++
		if holders > maxHolders {
			maxHolders = holders
		}
		p.Sleep(10 * time.Microsecond)
		holders--
		lk.Release(p, c)
	}
	for i := 0; i < 3; i++ {
		e.Spawn("strong", func(p *sim.Proc) { crit(p, s.Core(Strong, 0)) })
	}
	e.Spawn("weak", func(p *sim.Proc) { crit(p, s.Core(Weak, 0)) })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if maxHolders != 1 {
		t.Fatalf("mutual exclusion violated: max holders = %d", maxHolders)
	}
	if lk.Acquisitions != 4 {
		t.Fatalf("acquisitions = %d, want 4", lk.Acquisitions)
	}
	if lk.Held() {
		t.Fatal("lock still held at end")
	}
}

func TestIRQMaskingRoutesToOneDomain(t *testing.T) {
	e, s := newTestSoC()
	var strongGot, weakGot int
	s.IRQ[Strong].SetHandler(func(line IRQLine) { strongGot++ })
	s.IRQ[Weak].SetHandler(func(line IRQLine) { weakGot++ })
	// K2 rule (§7): strong awake -> main handles; weak masks the line.
	s.IRQ[Weak].Mask(IRQDMA)
	s.Raise(IRQDMA)
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if strongGot != 1 || weakGot != 0 {
		t.Fatalf("delivery = strong %d weak %d, want 1/0", strongGot, weakGot)
	}
	// Flip the masks (strong inactive case).
	s.IRQ[Weak].Unmask(IRQDMA)
	s.IRQ[Strong].Mask(IRQDMA)
	s.Raise(IRQDMA)
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if strongGot != 1 || weakGot != 1 {
		t.Fatalf("after flip: strong %d weak %d, want 1/1", strongGot, weakGot)
	}
}

func TestIRQDeliveryWakesInactiveDomain(t *testing.T) {
	e, s := newTestSoC()
	got := 0
	s.IRQ[Weak].SetHandler(func(line IRQLine) { got++ })
	s.IRQ[Strong].Mask(IRQNet)
	if err := e.Run(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if s.Domains[Weak].State() != DomInactive {
		t.Fatal("weak should be inactive")
	}
	s.Raise(IRQNet)
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("handler ran %d times, want 1 (after wake)", got)
	}
	if s.Domains[Weak].WakeCount() != 1 {
		t.Fatal("interrupt did not wake the domain")
	}
}

func TestDMASingleTransferBandwidth(t *testing.T) {
	e, s := newTestSoC()
	done := sim.NewEvent(e)
	var finished sim.Time
	e.Spawn("wait", func(p *sim.Proc) {
		done.Wait(p)
		finished = p.Now()
	})
	s.DMA.Submit(&Transfer{Domain: Strong, Bytes: 1 << 20, Done: done})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := time.Duration(float64(1<<20) * s.Cfg.DMANsPerByte)
	if got := time.Duration(finished); got != want {
		t.Fatalf("1MB transfer took %v, want %v", got, want)
	}
	// Effective bandwidth should be near 40 MB/s (Table 6 calibration).
	mbps := (1.0 / (1 << 20)) * float64(1<<20) / finished.Seconds() / 1e6 * (1 << 20) / (1 << 20)
	_ = mbps
	bw := float64(1<<20) / finished.Seconds() / 1e6 // MB/s (decimal)
	if bw < 38 || bw < 0 || bw > 46 {
		t.Fatalf("bandwidth = %.1f MB/s, want ~40-43", bw)
	}
}

func TestDMAWeightedProcessorSharing(t *testing.T) {
	e, s := newTestSoC()
	// One continuously-backlogged stream per domain: on each completion,
	// submit the next transfer immediately, so both stay active and the
	// bandwidth split is governed purely by the weights.
	var refill func(dom DomainID)
	deadline := sim.Time(2 * time.Second)
	refill = func(dom DomainID) {
		ev := sim.NewEvent(e)
		s.DMA.Submit(&Transfer{Domain: dom, Bytes: 64 << 10, Done: ev})
		ev.OnFire(func() {
			if e.Now() < deadline {
				refill(dom)
			}
		})
	}
	refill(Strong)
	refill(Weak)
	if err := e.Run(deadline); err != nil {
		t.Fatal(err)
	}
	if s.DMA.BytesMoved[Weak] == 0 {
		t.Fatal("weak stream starved entirely")
	}
	ratio := float64(s.DMA.BytesMoved[Strong]) / float64(s.DMA.BytesMoved[Weak])
	want := s.Cfg.DMAStrongWeight
	if ratio < want*0.85 || ratio > want*1.15 {
		t.Fatalf("strong/weak bandwidth ratio = %.2f, want ~%.1f", ratio, want)
	}
	// Aggregate must be the full engine bandwidth (~42.5 MB/s).
	totalMBs := float64(s.DMA.BytesMoved[Strong]+s.DMA.BytesMoved[Weak]) / 1e6 / 2.0
	if totalMBs < 40 || totalMBs > 44 {
		t.Fatalf("aggregate = %.1f MB/s, want ~42.5", totalMBs)
	}
}
