package soc

import "testing"

// FuzzMessage asserts the 32-bit mailbox envelope is lossless within its
// field widths: for any raw word, re-encoding the decoded fields
// reproduces the word bit-for-bit, and encoding masks inputs to the field
// widths instead of corrupting neighbors.
func FuzzMessage(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xFFFFFFFF))
	f.Add(uint32(NewMessage(MsgGetExclusive, 16384, 42)))
	f.Fuzz(func(t *testing.T, raw uint32) {
		m := Message(raw)
		back := NewMessage(m.Type(), m.Payload(), m.Seq())
		if uint32(back) != raw {
			t.Fatalf("envelope %#x round-trips to %#x (type=%v payload=%#x seq=%d)",
				raw, uint32(back), m.Type(), m.Payload(), m.Seq())
		}
		// Oversized fields must be masked, never smeared across neighbors.
		enc := NewMessage(m.Type(), 0xFFFFFFFF, 0xFFFFFFFF)
		if enc.Type() != m.Type() {
			t.Fatalf("payload/seq overflow corrupted type: %v != %v", enc.Type(), m.Type())
		}
	})
}
