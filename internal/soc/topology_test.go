package soc

import (
	"testing"
	"time"

	"k2/internal/sim"
)

func newNTestSoC(weak int) (*sim.Engine, *SoC) {
	e := sim.NewEngine()
	return e, New(e, DefaultConfig().WithWeakDomains(weak))
}

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{}).Validate(); err == nil {
		t.Fatal("empty topology accepted")
	}
	one := Topology{DefaultConfig().strongSpec()}
	if err := one.Validate(); err == nil {
		t.Fatal("single-domain topology accepted")
	}
	cfg := DefaultConfig()
	bad := Topology{cfg.strongSpec(), cfg.weakSpec("weak")}
	bad[1].Cores = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-core domain accepted")
	}
}

func TestWithWeakDomainsShape(t *testing.T) {
	_, s := newNTestSoC(3)
	if s.NumDomains() != 4 {
		t.Fatalf("domains = %d, want 4", s.NumDomains())
	}
	if got := s.WeakDomains(); len(got) != 3 || got[0] != Weak || got[2] != DomainID(3) {
		t.Fatalf("weak domains = %v", got)
	}
	names := []string{"strong", "weak", "weak2", "weak3"}
	for id, d := range s.Domains {
		if d.Name != names[id] {
			t.Fatalf("domain %d named %q, want %q", id, d.Name, names[id])
		}
	}
	// Every weak domain is a full M3 instance: same cores and frequency as
	// the OMAP4 one.
	for _, k := range s.WeakDomains() {
		if len(s.Domains[k].Cores) != 1 || s.Domains[k].Cores[0].FreqMHz != 200 {
			t.Fatalf("%v: cores=%d freq=%d", k, len(s.Domains[k].Cores), s.Domains[k].Cores[0].FreqMHz)
		}
	}
}

// A message between two weak domains must be routed directly: the strong
// domain's inbox stays empty and the payload arrives in order.
func TestMailboxRoutesBetweenWeakDomains(t *testing.T) {
	e, s := newNTestSoC(2)
	w2 := DomainID(2)
	var got []uint32
	e.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			msg, from := s.Mailbox.RecvFrom(p, w2)
			if from != Weak {
				t.Errorf("message %d from %v, want %v", i, from, Weak)
			}
			got = append(got, msg.Payload())
		}
	})
	e.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			s.Mailbox.Send(p, s.Core(Weak, 0), w2, NewMessage(MsgGeneric, uint32(i), uint32(i)))
		}
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("out of order delivery: %v", got)
		}
	}
	if s.Mailbox.Sent(Strong) != 0 {
		t.Fatalf("strong inbox saw %d messages; weak-to-weak mail must not transit it",
			s.Mailbox.Sent(Strong))
	}
	if s.Mailbox.SentBetween(Weak, w2) != 3 {
		t.Fatalf("SentBetween(weak, weak2) = %d, want 3", s.Mailbox.SentBetween(Weak, w2))
	}
}

// Mail to an inactive weak domain wakes that domain and only that domain.
func TestMailboxWakesInactiveWeakPeer(t *testing.T) {
	e, s := newNTestSoC(3)
	if err := e.Run(sim.Time(time.Minute)); err != nil { // let everything go inactive
		t.Fatal(err)
	}
	w3 := DomainID(3)
	for _, k := range s.WeakDomains() {
		if s.Domains[k].State() != DomInactive {
			t.Fatalf("%v not inactive", k)
		}
	}
	received := false
	e.Spawn("recv", func(p *sim.Proc) {
		msg, from := s.Mailbox.RecvFrom(p, w3)
		if from != Weak || msg.Payload() != 7 {
			t.Errorf("got payload %d from %v", msg.Payload(), from)
		}
		received = true
	})
	s.Mailbox.SendAsync(Weak, w3, NewMessage(MsgGeneric, 7, 1))
	if err := e.Run(sim.Time(2 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if !received {
		t.Fatal("message not delivered")
	}
	if s.Domains[w3].WakeCount() != 1 {
		t.Fatalf("destination wake count = %d, want 1", s.Domains[w3].WakeCount())
	}
	if s.Domains[DomainID(2)].WakeCount() != 0 {
		t.Fatal("uninvolved weak domain was woken")
	}
}

// The DMA engine must account service across N domains with the configured
// weights (strong keeps the calibrated OMAP4 weight, weak domains weight 1).
func TestDMAWeightsAcrossNDomains(t *testing.T) {
	_, s := newNTestSoC(2)
	if s.Domains[Strong].DMAWeight != DefaultConfig().DMAStrongWeight {
		t.Fatalf("strong weight = %v", s.Domains[Strong].DMAWeight)
	}
	for _, k := range s.WeakDomains() {
		if s.Domains[k].DMAWeight != 1.0 {
			t.Fatalf("%v weight = %v", k, s.Domains[k].DMAWeight)
		}
	}
	if len(s.DMA.Served) != 3 || len(s.DMA.BytesMoved) != 3 {
		t.Fatalf("DMA accounting sized %d/%d, want 3", len(s.DMA.Served), len(s.DMA.BytesMoved))
	}
}

// DefaultConfig must still describe the paper's OMAP4: the derived topology
// and an explicit WithWeakDomains(1) instance are the same platform.
func TestDefaultTopologyIsOMAP4(t *testing.T) {
	cfg := DefaultConfig()
	topo := cfg.EffectiveTopology()
	if len(topo) != 2 || topo.WeakCount() != 1 {
		t.Fatalf("derived topology has %d domains", len(topo))
	}
	if topo[0].Kind != CortexA9 || topo[0].Cores != 2 || topo[0].FreqMHz != 1200 {
		t.Fatalf("strong spec = %+v", topo[0])
	}
	if topo[1].Kind != CortexM3 || topo[1].Cores != 1 || topo[1].FreqMHz != 200 {
		t.Fatalf("weak spec = %+v", topo[1])
	}
	e := sim.NewEngine()
	s := New(e, cfg.WithWeakDomains(1))
	if s.NumDomains() != 2 || len(s.Domains[Strong].Cores) != 2 || len(s.Domains[Weak].Cores) != 1 {
		t.Fatal("WithWeakDomains(1) is not the OMAP4 shape")
	}
}
