package soc

import (
	"time"

	"k2/internal/sim"
)

// Transfer is one programmed DMA transfer. Done fires when the engine
// completes it; the engine also raises IRQDMA.
type Transfer struct {
	Domain DomainID // the domain whose kernel programmed the transfer
	Bytes  int64
	Done   *sim.Event

	remaining float64 // bytes left to move
}

// DMAEngine models the OMAP4 system DMA engine used for bulk IO transfers
// (§9.2). Concurrently active channels progress simultaneously, sharing the
// engine's effective bandwidth in proportion to their channel priority —
// a weighted processor-sharing server. Strong-domain channels carry ~2.4x
// the weight of weak-domain ones, reflecting the platform's channel
// priorities and K2's asymmetric design; this reproduces Table 6's
// ~28.4 : 11.5 MB/s split under saturation.
type DMAEngine struct {
	soc *SoC

	active     []*Transfer
	lastUpdate sim.Time
	gen        int

	// Served counts completed transfers per domain; BytesMoved the payload.
	Served     []int
	BytesMoved []int64
}

func newDMAEngine(s *SoC) *DMAEngine {
	return &DMAEngine{
		soc:        s,
		Served:     make([]int, s.NumDomains()),
		BytesMoved: make([]int64, s.NumDomains()),
	}
}

// Submit activates a transfer. The caller has already paid the CPU-side
// programming cost in the driver; Submit itself is free.
func (d *DMAEngine) Submit(t *Transfer) {
	if t.Done == nil {
		t.Done = sim.NewEvent(d.soc.Eng)
	}
	d.update()
	t.remaining = float64(t.Bytes)
	d.active = append(d.active, t)
	d.reschedule()
}

// Active returns the number of in-flight transfers.
func (d *DMAEngine) Active() int { return len(d.active) }

func (d *DMAEngine) weight(t *Transfer) float64 {
	return d.soc.Domains[t.Domain].DMAWeight
}

// rateBytesPerNs returns t's current progress rate.
func (d *DMAEngine) rateBytesPerNs(t *Transfer) float64 {
	var totalW float64
	for _, a := range d.active {
		totalW += d.weight(a)
	}
	bw := 1.0 / d.soc.Cfg.DMANsPerByte // full engine bandwidth, bytes/ns
	return bw * d.weight(t) / totalW
}

// update advances every active transfer to the current instant. Rates are
// constant between events, so this is exact.
func (d *DMAEngine) update() {
	now := d.soc.Eng.Now()
	elapsed := float64(now - d.lastUpdate)
	d.lastUpdate = now
	if elapsed <= 0 || len(d.active) == 0 {
		return
	}
	for _, t := range d.active {
		t.remaining -= elapsed * d.rateBytesPerNs(t)
	}
}

const dmaEpsilon = 1e-6

// reschedule completes any finished transfers and schedules the next
// completion instant.
func (d *DMAEngine) reschedule() {
	// Complete finished transfers.
	rest := d.active[:0]
	var done []*Transfer
	for _, t := range d.active {
		if t.remaining <= dmaEpsilon {
			done = append(done, t)
		} else {
			rest = append(rest, t)
		}
	}
	d.active = rest
	for _, t := range done {
		d.Served[t.Domain]++
		d.BytesMoved[t.Domain] += t.Bytes
		t.Done.Fire()
		d.soc.Raise(IRQDMA)
	}
	if len(d.active) == 0 {
		return
	}
	// Earliest completion at current rates.
	var next time.Duration
	for i, t := range d.active {
		eta := time.Duration(t.remaining / d.rateBytesPerNs(t))
		if i == 0 || eta < next {
			next = eta
		}
	}
	if next < 1 {
		next = 1
	}
	d.gen++
	g := d.gen
	d.soc.Eng.After(next, func() {
		if d.gen != g {
			return // a newer event superseded this one
		}
		d.update()
		d.reschedule()
	})
}
