package soc

import (
	"testing"
	"time"

	"k2/internal/sim"
)

func TestExecCancelableCompletes(t *testing.T) {
	e, s := newTestSoC()
	cancel := sim.NewEvent(e)
	var consumed Work
	e.Spawn("w", func(p *sim.Proc) {
		consumed = s.Core(Strong, 0).ExecCancelable(p, Work(time.Millisecond), cancel)
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if consumed != Work(time.Millisecond) {
		t.Fatalf("consumed = %v, want full work", consumed)
	}
}

func TestExecCancelablePreempted(t *testing.T) {
	e, s := newTestSoC()
	cancel := sim.NewEvent(e)
	var consumed Work
	var elapsed time.Duration
	// On the weak core (12x slower): 1 ms of work takes 12 ms; cancel at
	// 6 ms -> half the work consumed.
	e.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		consumed = s.Core(Weak, 0).ExecCancelable(p, Work(time.Millisecond), cancel)
		elapsed = p.Now().Sub(start)
	})
	e.At(sim.Time(6*time.Millisecond), func() { cancel.Fire() })
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if elapsed != 6*time.Millisecond {
		t.Fatalf("elapsed = %v, want 6ms", elapsed)
	}
	if consumed < Work(499*time.Microsecond) || consumed > Work(501*time.Microsecond) {
		t.Fatalf("consumed = %v, want ~0.5ms of reference work", consumed)
	}
}

func TestExecCancelableBusyAccounting(t *testing.T) {
	e, s := newTestSoC()
	cancel := sim.NewEvent(e)
	d := s.Domains[Weak]
	e.Spawn("w", func(p *sim.Proc) {
		s.Core(Weak, 0).ExecCancelable(p, Work(time.Millisecond), cancel)
	})
	e.At(sim.Time(3*time.Millisecond), func() {
		if d.BusyCores() != 1 {
			t.Error("core not busy during cancelable exec")
		}
		cancel.Fire()
	})
	e.At(sim.Time(3*time.Millisecond)+1000, func() {
		if d.BusyCores() != 0 {
			t.Error("core still busy after preemption")
		}
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
}

func TestDVFSChangesSpeedAndPower(t *testing.T) {
	e, s := newTestSoC()
	c := s.Core(Strong, 0)
	if c.Speed() != 1.0 {
		t.Fatalf("boot speed = %v", c.Speed())
	}
	c.SetFreqMHz(350)
	if c.Speed() != 350.0/1200.0 {
		t.Fatalf("speed@350 = %v", c.Speed())
	}
	// Active power follows the DVFS curve.
	var dur time.Duration
	e.Spawn("w", func(p *sim.Proc) {
		start := p.Now()
		c.Exec(p, Work(time.Millisecond))
		dur = p.Now().Sub(start)
	})
	before := s.Domains[Strong].Rail.EnergyJ()
	if err := e.Run(sim.Time(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	slowdown := 1200.0 / 350.0
	wantDur := time.Duration(float64(time.Millisecond) * slowdown)
	if dur != wantDur {
		t.Fatalf("exec took %v, want %v", dur, wantDur)
	}
	// Energy during the busy phase: active@350 = 79.8 mW.
	busyJ := 79.8e-3 * dur.Seconds()
	idleJ := 25.2e-3 * (10*time.Millisecond - dur).Seconds()
	got := s.Domains[Strong].Rail.EnergyJ() - before
	want := busyJ + idleJ
	if got < want*0.999 || got > want*1.001 {
		t.Fatalf("energy = %v J, want %v", got, want)
	}
}

func TestIdleTimerIgnoresHandlerBlips(t *testing.T) {
	// A periodic interrupt-style blip (raw Exec) must not keep the domain
	// awake past its inactivity timeout; only scheduler activity
	// (KickIdleTimer) restarts the countdown.
	e, s := newTestSoC()
	d := s.Domains[Strong]
	stop := false
	var tick func()
	tick = func() {
		e.After(16*time.Millisecond, func() {
			if stop || !d.Awake() {
				return
			}
			e.Spawn("blip", func(p *sim.Proc) {
				s.Core(Strong, 1).Exec(p, Work(5*time.Microsecond))
			})
			tick()
		})
	}
	tick()
	if err := e.Run(sim.Time(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	stop = true
	if d.State() != DomInactive {
		t.Fatalf("domain state = %v; periodic handler blips kept it awake", d.State())
	}
}
