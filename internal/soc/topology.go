package soc

import (
	"fmt"
	"time"

	"k2/internal/power"
)

// DomainSpec describes one coherence domain of a platform: its cores, their
// operating point, and its Table-3-style power numbers. A platform is built
// from one strong domain followed by N weak domains (§4.2 generalized: the
// paper's OMAP4 instance has N=1, but nothing in the design fixes it).
type DomainSpec struct {
	// Name labels the domain in traces ("strong", "weak", "weak2", ...).
	Name string
	// Kind is the microarchitecture of the domain's cores.
	Kind CoreKind
	// Cores is how many cores the domain has.
	Cores int
	// FreqMHz is the domain's operating frequency.
	FreqMHz int

	// Profile gives the domain rail's power levels (active/idle/inactive),
	// as in Table 3.
	Profile power.Profile
	// DVFS, if non-nil, recomputes active power when the frequency changes.
	DVFS func(freqMHz int) power.Milliwatts

	// WakeLatency and WakeEnergyJ are the domain's inactive-to-awake
	// transition penalty (§2.2).
	WakeLatency time.Duration
	WakeEnergyJ float64
	// InactiveTimeout overrides Config.InactiveTimeout when non-zero.
	InactiveTimeout time.Duration

	// DMAWeight is the processor-sharing weight of the domain's DMA
	// channels; zero means 1.0.
	DMAWeight float64
}

// Topology is an ordered set of coherence domains. Index 0 (Strong) must be
// the strong domain; indices 1..N are weak domains.
type Topology []DomainSpec

// Validate checks the structural requirements: at least one strong and one
// weak domain, and at least one core per domain.
func (t Topology) Validate() error {
	if len(t) < 2 {
		return fmt.Errorf("soc: topology needs a strong and at least one weak domain, got %d domains", len(t))
	}
	for i, spec := range t {
		if spec.Cores < 1 {
			return fmt.Errorf("soc: domain %d (%s) has no cores", i, spec.Name)
		}
	}
	return nil
}

// WeakCount returns the number of weak domains.
func (t Topology) WeakCount() int { return len(t) - 1 }

// EffectiveTopology returns the configured topology, or the OMAP4-style
// two-domain instance derived from the legacy scalar fields when none is
// set. DefaultConfig therefore keeps producing today's platform.
func (c Config) EffectiveTopology() Topology {
	if c.Topology != nil {
		return c.Topology
	}
	return Topology{c.strongSpec(), c.weakSpec("weak")}
}

func (c Config) strongSpec() DomainSpec {
	return DomainSpec{
		Name:    "strong",
		Kind:    CortexA9,
		Cores:   c.StrongCores,
		FreqMHz: c.StrongFreqMHz,
		Profile: power.Profile{
			Active:   a9ActiveMW(c.StrongFreqMHz),
			Idle:     a9IdleMW,
			Inactive: inactiveMW,
		},
		DVFS:        a9ActiveMW,
		WakeLatency: c.StrongWakeLatency,
		WakeEnergyJ: c.StrongWakeEnergyJ,
		DMAWeight:   c.DMAStrongWeight,
	}
}

func (c Config) weakSpec(name string) DomainSpec {
	return DomainSpec{
		Name:    name,
		Kind:    CortexM3,
		Cores:   c.WeakCores,
		FreqMHz: c.WeakFreqMHz,
		Profile: power.Profile{
			Active:   m3ActiveMW200,
			Idle:     m3IdleMW,
			Inactive: inactiveMW,
		},
		WakeLatency: c.WeakWakeLatency,
		WakeEnergyJ: c.WeakWakeEnergyJ,
		DMAWeight:   1.0,
	}
}

// WithWeakDomains returns a copy of the config whose topology has the same
// strong domain and n weak domains, each an instance of the legacy weak
// spec. n=1 is the OMAP4 platform with the topology made explicit.
func (c Config) WithWeakDomains(n int) Config {
	if n < 1 {
		panic("soc: WithWeakDomains needs at least one weak domain")
	}
	topo := Topology{c.strongSpec()}
	for i := 1; i <= n; i++ {
		name := "weak"
		if i > 1 {
			name = fmt.Sprintf("weak%d", i)
		}
		topo = append(topo, c.weakSpec(name))
	}
	out := c
	out.Topology = topo
	// Every weak kernel costs a 16 MB local region plus a 16 MB boot-block
	// deflate from the global pool; a 64-domain topology cannot boot inside
	// the calibrated 1 GB. Grow physical memory when the topology does not
	// fit (48 MB per weak kernel plus main-kernel and global headroom) and
	// never shrink it, so topologies that already fit — every config up to
	// 18 weak domains — keep their exact layout and page count.
	if need := int64(n)*(48<<20) + (128 << 20); out.RAMBytes < need {
		out.RAMBytes = need
	}
	return out
}
