package soc

import (
	"time"

	"k2/internal/sim"
)

// HWSpinlock is one of the SoC's memory-mapped hardware spinlocks supporting
// atomic test-and-set across coherence domains (§5.1). K2 augments the locks
// of shadowed services with these (§5.3 step 4).
type HWSpinlock struct {
	soc    *SoC
	id     int
	held   bool
	holder DomainID
	// brokenMask records domains whose grant was force-released by Break
	// and not yet "used up" by the stale Release their frozen proc issues
	// once it resumes after a reboot.
	brokenMask uint64
	// stats
	Acquisitions  int
	Contended     int
	StaleReleases int // releases after the watchdog already broke the grant
}

// SpinlockBank is the set of hardware spinlocks on the SoC.
type SpinlockBank struct {
	soc   *SoC
	locks []*HWSpinlock
}

func newSpinlockBank(s *SoC, n int) *SpinlockBank {
	b := &SpinlockBank{soc: s}
	for i := 0; i < n; i++ {
		b.locks = append(b.locks, &HWSpinlock{soc: s, id: i})
	}
	return b
}

// Lock returns spinlock i.
func (b *SpinlockBank) Lock(i int) *HWSpinlock { return b.locks[i] }

// Count returns the number of locks in the bank.
func (b *SpinlockBank) Count() int { return len(b.locks) }

// TryAcquire attempts the test-and-set once, charging the interconnect
// access to the calling core. It reports whether the lock was taken.
func (l *HWSpinlock) TryAcquire(p *sim.Proc, c *Core) bool {
	c.ExecFor(p, l.soc.Cfg.SpinlockAccess)
	if l.held {
		return false
	}
	l.held = true
	l.holder = c.Domain.ID
	l.Acquisitions++
	return true
}

// Acquire spins until the lock is taken. Spinning burns active power on the
// calling core (the hardware test-and-set loop cannot sleep); retries back
// off exponentially, as a WFE-based ARM spin loop effectively does, which
// also keeps long contention episodes cheap to simulate.
func (l *HWSpinlock) Acquire(p *sim.Proc, c *Core) {
	backoff := l.soc.Cfg.SpinlockBackoff
	const maxBackoff = 100 * time.Microsecond
	first := true
	for !l.TryAcquire(p, c) {
		if first {
			l.Contended++
			first = false
		}
		c.ExecFor(p, backoff)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// Release frees the lock, charging the interconnect access. A release by a
// domain whose grant the watchdog already broke (the releasing proc froze
// inside the critical section, the domain was declared dead, and the proc
// resumed after the reboot) is a counted no-op: the break already freed the
// lock, which may even be held by someone else by now.
func (l *HWSpinlock) Release(p *sim.Proc, c *Core) {
	d := c.Domain.ID
	if (!l.held || l.holder != d) && l.brokenMask&(1<<uint(d)) != 0 {
		l.brokenMask &^= 1 << uint(d)
		l.StaleReleases++
		c.ExecFor(p, l.soc.Cfg.SpinlockAccess)
		return
	}
	if !l.held {
		panic("soc: HWSpinlock.Release of a free lock")
	}
	c.ExecFor(p, l.soc.Cfg.SpinlockAccess)
	l.held = false
}

// Break force-releases the lock if it is held by domain d, reporting
// whether it was. The OMAP hardware spinlock module exposes this software
// reset so a surviving kernel can recover locks from a dead peer; K2's
// watchdog uses it before sweeping the dead kernel's shared state.
func (l *HWSpinlock) Break(d DomainID) bool {
	if l.held && l.holder == d {
		l.held = false
		l.brokenMask |= 1 << uint(d)
		return true
	}
	return false
}

// BreakAllHeldBy force-releases every lock held by domain d, returning how
// many were broken.
func (b *SpinlockBank) BreakAllHeldBy(d DomainID) int {
	n := 0
	for _, l := range b.locks {
		if l.Break(d) {
			n++
		}
	}
	return n
}

// Held reports whether the lock is currently taken.
func (l *HWSpinlock) Held() bool { return l.held }

// Holder returns the domain that holds the lock (meaningful only if Held).
func (l *HWSpinlock) Holder() DomainID { return l.holder }
