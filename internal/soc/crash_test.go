package soc

import (
	"testing"
	"time"

	"k2/internal/sim"
)

// A crash must freeze the domain's procs at their next instruction; Reboot
// resumes them after the wake penalty.
func TestCrashFreezesExecUntilReboot(t *testing.T) {
	e, s := newTestSoC()
	d := s.Domains[Weak]
	steps := 0
	e.Spawn("worker", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			s.Core(Weak, 0).Exec(p, Work(10*time.Microsecond))
			steps++
		}
	})
	e.At(sim.Time(200*time.Microsecond), func() { d.Crash() })
	var frozenAt int
	e.At(sim.Time(5*time.Millisecond), func() {
		frozenAt = steps
		if !d.Crashed() {
			t.Error("domain not crashed")
		}
	})
	e.At(sim.Time(10*time.Millisecond), func() {
		if steps != frozenAt {
			t.Errorf("crashed domain made progress: %d -> %d", frozenAt, steps)
		}
		d.Reboot()
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if steps != 100 {
		t.Fatalf("worker finished %d/100 steps after reboot", steps)
	}
	if d.CrashCount() != 1 {
		t.Fatalf("crash count = %d", d.CrashCount())
	}
}

// Mail to a crashed domain is lost (perfect fabric: silently dropped).
func TestMailToCrashedDomainLost(t *testing.T) {
	e, s := newTestSoC()
	var got []Message
	e.Spawn("rx", func(p *sim.Proc) {
		for {
			msg, _ := s.Mailbox.RecvFrom(p, Weak)
			got = append(got, msg)
		}
	})
	s.Domains[Weak].Crash()
	e.Spawn("tx", func(p *sim.Proc) {
		s.Mailbox.SendAsync(Strong, Weak, NewMessage(MsgGeneric, 1, 0))
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("crashed domain received %d messages", len(got))
	}
	if s.Mailbox.Stats.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", s.Mailbox.Stats.Dropped)
	}
}

// Crash powers the rail down to inactive level; Hang leaves it at idle —
// the expensive failure mode a watchdog exists to catch.
func TestCrashVersusHangPower(t *testing.T) {
	_, s := newTestSoC()
	d := s.Domains[Weak]
	d.Crash()
	if got := d.Rail.Level(); got != d.Profile.Inactive {
		t.Fatalf("crashed rail at %v, want inactive %v", got, d.Profile.Inactive)
	}
	d.Reboot()

	_, s2 := newTestSoC()
	d2 := s2.Domains[Weak]
	d2.Hang()
	if got := d2.Rail.Level(); got != d2.Profile.Idle {
		t.Fatalf("hung rail at %v, want idle %v", got, d2.Profile.Idle)
	}
	if !d2.Crashed() {
		t.Fatal("a hung domain must count as crashed")
	}
}

// A dead kernel's hardware spinlocks must be recoverable by a survivor.
func TestSpinlockBreakAllHeldBy(t *testing.T) {
	e, s := newTestSoC()
	e.Spawn("holder", func(p *sim.Proc) {
		s.Spinlocks.Lock(1).Acquire(p, s.Core(Weak, 0))
		s.Spinlocks.Lock(3).Acquire(p, s.Core(Weak, 0))
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	s.Domains[Weak].Crash()
	if n := s.Spinlocks.BreakAllHeldBy(Weak); n != 2 {
		t.Fatalf("broke %d locks, want 2", n)
	}
	if s.Spinlocks.Lock(1).Held() || s.Spinlocks.Lock(3).Held() {
		t.Fatal("locks still held after break")
	}
	if s.Spinlocks.BreakAllHeldBy(Weak) != 0 {
		t.Fatal("second break found locks")
	}
	// Break must not release locks held by others.
	held := s.Spinlocks.Lock(5)
	e.Spawn("strong-holder", func(p *sim.Proc) {
		held.Acquire(p, s.Core(Strong, 0))
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if held.Break(Weak) {
		t.Fatal("broke a lock held by another domain")
	}
}
