package soc

import (
	"fmt"
	"time"

	"k2/internal/sim"
)

// MsgType is the 3-bit message type field of a hardware mail (§6.3: "Each
// message is 32-bit ... with 20 bits for page frame number, 3 bits for
// message type, and the rest for message sequence number").
type MsgType uint32

const (
	// MsgGetExclusive requests exclusive ownership of a DSM page.
	MsgGetExclusive MsgType = iota
	// MsgPutExclusive grants exclusive ownership of a DSM page.
	MsgPutExclusive
	// MsgSuspendNW asks the shadow kernel to suspend the NightWatch
	// threads of a process (§8).
	MsgSuspendNW
	// MsgAckSuspendNW acknowledges MsgSuspendNW.
	MsgAckSuspendNW
	// MsgResumeNW re-enables the NightWatch threads of a process (§8).
	MsgResumeNW
	// MsgBalloonCmd carries a meta-level memory-manager command (§6.2).
	MsgBalloonCmd
	// MsgBalloonAck acknowledges MsgBalloonCmd.
	MsgBalloonAck
	// MsgGeneric is available to other coordination protocols.
	MsgGeneric
)

func (t MsgType) String() string {
	names := [...]string{"GetExclusive", "PutExclusive", "SuspendNW",
		"AckSuspendNW", "ResumeNW", "BalloonCmd", "BalloonAck", "Generic"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint32(t))
}

// Message is one 32-bit hardware mail. Layout: bits 0..19 payload (page
// frame number for DSM messages), bits 20..22 type, bits 23..31 sequence.
type Message uint32

// NewMessage packs a message; payload and seq are truncated to their fields.
func NewMessage(t MsgType, payload uint32, seq uint32) Message {
	return Message(payload&0xFFFFF | (uint32(t)&0x7)<<20 | (seq&0x1FF)<<23)
}

// Payload returns the 20-bit payload field.
func (m Message) Payload() uint32 { return uint32(m) & 0xFFFFF }

// Type returns the 3-bit type field.
func (m Message) Type() MsgType { return MsgType(uint32(m) >> 20 & 0x7) }

// Seq returns the 9-bit sequence number.
func (m Message) Seq() uint32 { return uint32(m) >> 23 & 0x1FF }

func (m Message) String() string {
	return fmt.Sprintf("%v(payload=%d,seq=%d)", m.Type(), m.Payload(), m.Seq())
}

// Envelope is one routed mail: the 32-bit hardware message plus the fabric's
// routing metadata. Real mailbox hardware exposes per-sender registers, so
// the receiver always knows which domain a mail came from; the simulation
// carries that as an explicit sender field.
type Envelope struct {
	From DomainID
	Msg  Message
}

// Mailbox is the hardware mailbox fabric: cores pass 32-bit messages between
// any pair of domains, interrupting each other; delivery is in order per
// destination and the measured round-trip is about 5 µs (§5.1). Each
// destination domain has one inbox queue; the sender is routed alongside the
// message.
//
// By default the fabric is perfect: no loss, no duplication, fixed latency.
// A fault injector may be installed with SetFilter, and the reliable
// transport (sequence numbers, acks, retransmission, receiver-side dedup)
// with EnableReliable; both are off unless asked for and cost nothing when
// off.
type Mailbox struct {
	soc    *SoC
	inbox  []*sim.Queue // per destination domain
	sent   [][]int      // [from][to] message counts
	nextSq uint32

	filter MailFilter
	rel    *ReliableParams
	links  [][]*relLink // [from][to], nil until reliable mode is on

	// relOutstanding counts reliable sends still awaiting their fate:
	// incremented per send, decremented exactly once when the send is
	// first acknowledged or abandoned.
	relOutstanding int

	// OnDeliveryFailed, if set, is called when the reliable transport
	// abandons a mail after exhausting its retries (receiver dead or the
	// link too lossy). Runs in engine context.
	OnDeliveryFailed func(from, to DomainID, msg Message)

	// Stats counts transport-level fault and recovery events.
	Stats MailboxStats
}

// MailboxStats tallies what the fabric's fault injection and the reliable
// transport did. All zero on a fault-free run.
type MailboxStats struct {
	Dropped     int // mail copies lost (injected drop or crashed receiver)
	Delayed     int
	Duplicated  int
	Deduped     int // duplicate deliveries suppressed by the receiver
	Retransmits int
	AcksDropped int
	Failed      int // sends abandoned after MaxRetries retransmissions
}

func newMailbox(s *SoC) *Mailbox {
	n := s.NumDomains()
	mb := &Mailbox{soc: s}
	for i := 0; i < n; i++ {
		mb.inbox = append(mb.inbox, sim.NewQueue(s.Eng))
		mb.sent = append(mb.sent, make([]int, n))
	}
	if s.Cfg.Reliable != nil {
		mb.EnableReliable(*s.Cfg.Reliable)
	}
	return mb
}

// NextSeq returns a fresh 9-bit sequence number.
func (mb *Mailbox) NextSeq() uint32 {
	mb.nextSq = (mb.nextSq + 1) & 0x1FF
	return mb.nextSq
}

// Sent returns how many messages have been sent to domain d (from anywhere).
func (mb *Mailbox) Sent(d DomainID) int {
	var n int
	for _, row := range mb.sent {
		n += row[d]
	}
	return n
}

// SentBetween returns how many messages domain from has sent to domain to.
func (mb *Mailbox) SentBetween(from, to DomainID) int { return mb.sent[from][to] }

// SentBy returns how many messages domain d has sent (to anywhere).
func (mb *Mailbox) SentBy(d DomainID) int {
	var n int
	for _, c := range mb.sent[d] {
		n += c
	}
	return n
}

// Send posts msg to the inbox of domain to, charging the sender's core the
// mailbox MMIO write (interconnect-bound, so the same wall-clock on either
// core) and delivering after the interconnect latency. The receiving domain
// is woken (a mailbox interrupt); the message becomes visible to Recv once
// the domain is awake, preserving delivery order.
func (mb *Mailbox) Send(p *sim.Proc, from *Core, to DomainID, msg Message) {
	from.ExecFor(p, mb.soc.Cfg.MailboxSendCost)
	mb.SendAsync(from.Domain.ID, to, msg)
}

// SendAsync posts msg without charging a sender core; used by engine-context
// code (e.g. interrupt handlers already accounted elsewhere).
func (mb *Mailbox) SendAsync(from, to DomainID, msg Message) {
	mb.sent[from][to]++
	if mb.links != nil {
		mb.sendReliable(from, to, msg)
		return
	}
	latency := mb.soc.Cfg.MailboxLatency
	if mb.filter != nil {
		v := mb.filter.FilterMail(from, to, msg, false)
		if v.Drop {
			mb.Stats.Dropped++
			return
		}
		if v.Delay > 0 {
			mb.Stats.Delayed++
			latency += v.Delay
		}
		if v.Duplicate {
			mb.Stats.Duplicated++
			mb.deliverAt(latency+mb.soc.Cfg.MailboxLatency, from, to, msg)
		}
	}
	mb.deliverAt(latency, from, to, msg)
}

// deliverAt lands one copy of msg in to's inbox after d; the copy is lost if
// the receiver is crashed when it arrives.
func (mb *Mailbox) deliverAt(d time.Duration, from, to DomainID, msg Message) {
	q := mb.inbox[to]
	dst := mb.soc.Domains[to]
	mb.soc.afterIn(to, d, func() {
		// A mail interrupts (and wakes) the destination domain; handlers
		// run once the wake completes. Deliveries to a dead domain vanish.
		if !dst.whenAwake(func() { q.Put(Envelope{From: from, Msg: msg}) }) {
			mb.Stats.Dropped++
		}
	})
}

// Recv blocks p until a message addressed to domain d arrives.
func (mb *Mailbox) Recv(p *sim.Proc, d DomainID) Message {
	return mb.inbox[d].Get(p).(Envelope).Msg
}

// RecvFrom blocks p until a message addressed to domain d arrives, also
// returning which domain sent it.
func (mb *Mailbox) RecvFrom(p *sim.Proc, d DomainID) (Message, DomainID) {
	env := mb.inbox[d].Get(p).(Envelope)
	return env.Msg, env.From
}

// Pending returns the number of undelivered messages queued for domain d.
func (mb *Mailbox) Pending(d DomainID) int { return mb.inbox[d].Len() }
