package soc

import (
	"fmt"

	"k2/internal/sim"
)

// MsgType is the 3-bit message type field of a hardware mail (§6.3: "Each
// message is 32-bit ... with 20 bits for page frame number, 3 bits for
// message type, and the rest for message sequence number").
type MsgType uint32

const (
	// MsgGetExclusive requests exclusive ownership of a DSM page.
	MsgGetExclusive MsgType = iota
	// MsgPutExclusive grants exclusive ownership of a DSM page.
	MsgPutExclusive
	// MsgSuspendNW asks the shadow kernel to suspend the NightWatch
	// threads of a process (§8).
	MsgSuspendNW
	// MsgAckSuspendNW acknowledges MsgSuspendNW.
	MsgAckSuspendNW
	// MsgResumeNW re-enables the NightWatch threads of a process (§8).
	MsgResumeNW
	// MsgBalloonCmd carries a meta-level memory-manager command (§6.2).
	MsgBalloonCmd
	// MsgBalloonAck acknowledges MsgBalloonCmd.
	MsgBalloonAck
	// MsgGeneric is available to other coordination protocols.
	MsgGeneric
)

func (t MsgType) String() string {
	names := [...]string{"GetExclusive", "PutExclusive", "SuspendNW",
		"AckSuspendNW", "ResumeNW", "BalloonCmd", "BalloonAck", "Generic"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint32(t))
}

// Message is one 32-bit hardware mail. Layout: bits 0..19 payload (page
// frame number for DSM messages), bits 20..22 type, bits 23..31 sequence.
type Message uint32

// NewMessage packs a message; payload and seq are truncated to their fields.
func NewMessage(t MsgType, payload uint32, seq uint32) Message {
	return Message(payload&0xFFFFF | (uint32(t)&0x7)<<20 | (seq&0x1FF)<<23)
}

// Payload returns the 20-bit payload field.
func (m Message) Payload() uint32 { return uint32(m) & 0xFFFFF }

// Type returns the 3-bit type field.
func (m Message) Type() MsgType { return MsgType(uint32(m) >> 20 & 0x7) }

// Seq returns the 9-bit sequence number.
func (m Message) Seq() uint32 { return uint32(m) >> 23 & 0x1FF }

func (m Message) String() string {
	return fmt.Sprintf("%v(payload=%d,seq=%d)", m.Type(), m.Payload(), m.Seq())
}

// Mailbox is the hardware mailbox facility: cores pass 32-bit messages
// across domains, interrupting each other; delivery is in order and the
// measured round-trip is about 5 µs (§5.1).
type Mailbox struct {
	soc    *SoC
	inbox  [2]*sim.Queue // per destination domain
	sent   [2]int
	nextSq uint32
}

func newMailbox(s *SoC) *Mailbox {
	return &Mailbox{
		soc:   s,
		inbox: [2]*sim.Queue{sim.NewQueue(s.Eng), sim.NewQueue(s.Eng)},
	}
}

// NextSeq returns a fresh 9-bit sequence number.
func (mb *Mailbox) NextSeq() uint32 {
	mb.nextSq = (mb.nextSq + 1) & 0x1FF
	return mb.nextSq
}

// Sent returns how many messages have been sent to domain d.
func (mb *Mailbox) Sent(d DomainID) int { return mb.sent[d] }

// Send posts msg to the inbox of domain to, charging the sender's core the
// mailbox MMIO write (interconnect-bound, so the same wall-clock on either
// core) and delivering after the interconnect latency. The receiving domain
// is woken (a mailbox interrupt); the message becomes visible to Recv once
// the domain is awake, preserving delivery order.
func (mb *Mailbox) Send(p *sim.Proc, from *Core, to DomainID, msg Message) {
	from.ExecFor(p, mb.soc.Cfg.MailboxSendCost)
	mb.SendAsync(to, msg)
}

// SendAsync posts msg without charging a sender core; used by engine-context
// code (e.g. interrupt handlers already accounted elsewhere).
func (mb *Mailbox) SendAsync(to DomainID, msg Message) {
	mb.sent[to]++
	q := mb.inbox[to]
	dst := mb.soc.Domains[to]
	mb.soc.Eng.After(mb.soc.Cfg.MailboxLatency, func() {
		// A mail interrupts (and wakes) the destination domain; handlers
		// run once the wake completes.
		dst.whenAwake(func() { q.Put(msg) })
	})
}

// Recv blocks p until a message addressed to domain d arrives.
func (mb *Mailbox) Recv(p *sim.Proc, d DomainID) Message {
	return mb.inbox[d].Get(p).(Message)
}

// Pending returns the number of undelivered messages queued for domain d.
func (mb *Mailbox) Pending(d DomainID) int { return mb.inbox[d].Len() }
