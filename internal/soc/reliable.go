package soc

import "time"

// MailVerdict is a fault injector's decision for one transmission attempt on
// the mailbox fabric. The zero value delivers the mail normally.
type MailVerdict struct {
	// Drop loses this copy of the mail entirely.
	Drop bool
	// Delay adds extra latency on top of the fabric's.
	Delay time.Duration
	// Duplicate delivers a second copy one fabric latency after the first.
	Duplicate bool
}

// MailFilter intercepts every transmission attempt on the fabric — data
// mails and, in reliable mode, transport acks (ack=true). Implemented by
// fault.Plan; installed with Mailbox.SetFilter.
type MailFilter interface {
	FilterMail(from, to DomainID, msg Message, ack bool) MailVerdict
}

// ReliableParams configures the mailbox's reliable transport: every mail
// carries a per-link sequence number, the receiver acknowledges and
// deduplicates, and the sender retransmits on ack timeout. K2's substrate
// does not need this on a perfect fabric — it exists so the system survives
// an injected lossy one, and so a crashed receiver surfaces as a delivery
// failure instead of an infinite wait.
type ReliableParams struct {
	// AckTimeout is how long the sender waits for an ack before
	// retransmitting. It should exceed one mailbox round trip (~5 µs).
	AckTimeout time.Duration
	// MaxRetries bounds retransmissions per mail; after that the send is
	// abandoned and OnDeliveryFailed fires.
	MaxRetries int
}

// DefaultReliableParams returns a transport tuned to the OMAP4 fabric: the
// ack timeout is several round trips, so a retransmission only triggers on
// real loss, never on an idle-but-alive receiver.
func DefaultReliableParams() ReliableParams {
	return ReliableParams{AckTimeout: 25 * time.Microsecond, MaxRetries: 8}
}

// relLink is the per-(sender, receiver) transport state.
type relLink struct {
	nextSeq uint64
	seen    map[uint64]bool // receiver-side: sequence numbers delivered
}

// relMail is one in-flight reliable mail on the sender side.
type relMail struct {
	from, to DomainID
	msg      Message
	seq      uint64
	attempts int
	acked    bool
	dead     bool // abandoned
}

// SetFilter installs (or, with nil, removes) the fault injector consulted on
// every transmission attempt.
func (mb *Mailbox) SetFilter(f MailFilter) { mb.filter = f }

// EnableReliable turns the reliable transport on for every link. Must be
// called before traffic flows (typically via Config.Reliable at boot).
func (mb *Mailbox) EnableReliable(p ReliableParams) {
	if p.AckTimeout <= 0 {
		p = DefaultReliableParams()
	}
	mb.rel = &p
	n := mb.soc.NumDomains()
	mb.links = make([][]*relLink, n)
	for i := range mb.links {
		mb.links[i] = make([]*relLink, n)
		for j := range mb.links[i] {
			mb.links[i][j] = &relLink{seen: make(map[uint64]bool)}
		}
	}
}

// Reliable reports whether the reliable transport is enabled.
func (mb *Mailbox) Reliable() bool { return mb.links != nil }

// sendReliable assigns the mail its link sequence number and starts the
// transmit/ack/retransmit cycle.
func (mb *Mailbox) sendReliable(from, to DomainID, msg Message) {
	l := mb.links[from][to]
	l.nextSeq++
	rm := &relMail{from: from, to: to, msg: msg, seq: l.nextSeq}
	mb.relOutstanding++
	mb.transmit(rm)
}

// OutstandingReliable returns how many reliable sends are neither
// acknowledged nor abandoned yet. The liveness oracle (internal/check)
// requires this to reach zero once the system quiesces: every send must be
// delivered or reported via OnDeliveryFailed, never parked forever.
func (mb *Mailbox) OutstandingReliable() int { return mb.relOutstanding }

// transmit sends one copy of rm and arms the ack timeout.
func (mb *Mailbox) transmit(rm *relMail) {
	rm.attempts++
	if rm.attempts > 1 {
		mb.Stats.Retransmits++
	}
	latency := mb.soc.Cfg.MailboxLatency
	verdict := MailVerdict{}
	if mb.filter != nil {
		verdict = mb.filter.FilterMail(rm.from, rm.to, rm.msg, false)
	}
	if verdict.Drop {
		mb.Stats.Dropped++
	} else {
		if verdict.Delay > 0 {
			mb.Stats.Delayed++
			latency += verdict.Delay
		}
		mb.soc.afterIn(rm.to, latency, func() { mb.arrive(rm) })
		if verdict.Duplicate {
			mb.Stats.Duplicated++
			lat2 := latency + mb.soc.Cfg.MailboxLatency
			mb.soc.afterIn(rm.to, lat2, func() { mb.arrive(rm) })
		}
	}
	mb.soc.afterIn(rm.from, mb.rel.AckTimeout, func() {
		if rm.acked || rm.dead {
			return
		}
		if rm.attempts > mb.rel.MaxRetries {
			rm.dead = true
			mb.relOutstanding--
			mb.Stats.Failed++
			if mb.OnDeliveryFailed != nil {
				mb.OnDeliveryFailed(rm.from, rm.to, rm.msg)
			}
			return
		}
		mb.transmit(rm)
	})
}

// arrive is one copy of rm reaching the receiver: dead receivers lose it,
// duplicates are suppressed, and every surviving arrival is acknowledged —
// including duplicates, because the earlier ack may itself have been lost
// and an unacknowledged sender retries forever.
func (mb *Mailbox) arrive(rm *relMail) {
	dst := mb.soc.Domains[rm.to]
	if dst.Crashed() {
		mb.Stats.Dropped++
		return
	}
	l := mb.links[rm.from][rm.to]
	if l.seen[rm.seq] {
		mb.Stats.Deduped++
	} else {
		l.seen[rm.seq] = true
		q := mb.inbox[rm.to]
		from := rm.from
		msg := rm.msg
		if !dst.whenAwake(func() { q.Put(Envelope{From: from, Msg: msg}) }) {
			mb.Stats.Dropped++
			return // died this instant; no ack either
		}
	}
	mb.sendAck(rm)
}

// sendAck carries the transport-level acknowledgement back to the sender.
// Acks ride the same fabric, so the injector can drop or delay them too.
func (mb *Mailbox) sendAck(rm *relMail) {
	latency := mb.soc.Cfg.MailboxLatency
	if mb.filter != nil {
		v := mb.filter.FilterMail(rm.to, rm.from, rm.msg, true)
		if v.Drop {
			mb.Stats.AcksDropped++
			return
		}
		if v.Delay > 0 {
			mb.Stats.Delayed++
			latency += v.Delay
		}
	}
	mb.soc.afterIn(rm.from, latency, func() {
		if rm.acked || rm.dead {
			return // duplicate ack, or the sender already gave up
		}
		rm.acked = true
		mb.relOutstanding--
	})
}
