// Package soc models the hardware of a multi-domain mobile SoC in the style
// of the TI OMAP4 (§5.1 of the paper): heterogeneous cores grouped into
// cache-coherence domains, a system interconnect shared by all domains,
// hardware mailboxes for inter-domain messages, hardware spinlocks for
// inter-domain synchronization, per-domain interrupt controllers wired to
// shared IO peripherals, and a DMA engine.
//
// All costs are charged in virtual time on the simulation engine; power is
// accounted on per-domain rails (see internal/power). Calibration constants
// live in omap4.go and cite the paper sentence they come from.
package soc

import (
	"fmt"
	"time"

	"k2/internal/sim"
)

// Work is an amount of computation expressed as the time it takes on the
// reference core (a Cortex-A9 at 1200 MHz). A core with speed s executes
// Work w in w/s of virtual time.
type Work time.Duration

// CoreKind identifies the microarchitecture of a core.
type CoreKind int

const (
	// CortexA9 is the strong, performance-oriented core (ARM ISA).
	CortexA9 CoreKind = iota
	// CortexM3 is the weak, efficiency-oriented core (Thumb-2 ISA).
	CortexM3
)

func (k CoreKind) String() string {
	switch k {
	case CortexA9:
		return "Cortex-A9"
	case CortexM3:
		return "Cortex-M3"
	default:
		return fmt.Sprintf("CoreKind(%d)", int(k))
	}
}

// Core is one processor core. Cores execute Work for simulated threads; the
// scheduler (internal/sched) arbitrates which thread may use a core.
type Core struct {
	ID      int
	Kind    CoreKind
	FreqMHz int
	Domain  *Domain

	speed float64 // execution speed relative to the reference core
}

// Speed returns the core's execution speed relative to the reference core.
func (c *Core) Speed() float64 { return c.speed }

// SetFreqMHz changes the core's clock, updating its speed and (for the
// strong domain) the domain's active power level, emulating DVFS.
func (c *Core) SetFreqMHz(mhz int) {
	c.FreqMHz = mhz
	c.speed = speedOf(c.Kind, mhz)
	c.Domain.refreshPower()
}

// Scale converts reference work into this core's execution time.
func (c *Core) Scale(w Work) time.Duration {
	return time.Duration(float64(w) / c.speed)
}

// Exec charges w of reference work to this core: the core (and its domain
// rail) is busy for the scaled duration. The domain must be awake. If the
// domain has crashed, the proc freezes (no progress, no cost) until the
// domain is rebooted — the simulated thread died with its kernel.
func (c *Core) Exec(p *sim.Proc, w Work) {
	if w <= 0 {
		return
	}
	c.Domain.freezeWhileCrashed(p)
	c.Domain.beginBusy()
	p.Sleep(c.Scale(w))
	c.Domain.endBusy()
}

// ExecFor charges exactly d of wall-clock busy time regardless of core
// speed; used for costs bound by the interconnect or DRAM rather than the
// core (e.g. uncached page-metadata writes, §6.2 balloon operations).
func (c *Core) ExecFor(p *sim.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	c.Domain.freezeWhileCrashed(p)
	c.Domain.beginBusy()
	p.Sleep(d)
	c.Domain.endBusy()
}

// IdleWait parks the proc for d without marking the core busy, modelling a
// core waiting for IO with the domain drawing idle power.
func (c *Core) IdleWait(p *sim.Proc, d time.Duration) { p.Sleep(d) }

// ExecCancelable executes up to w of reference work but stops early if
// cancel fires (e.g. a preemption signal). It returns the work actually
// consumed. The domain must be awake.
func (c *Core) ExecCancelable(p *sim.Proc, w Work, cancel *sim.Event) Work {
	if w <= 0 {
		return 0
	}
	c.Domain.freezeWhileCrashed(p)
	start := p.Now()
	c.Domain.beginBusy()
	completed := p.SleepOrCancel(c.Scale(w), cancel)
	c.Domain.endBusy()
	if completed {
		return w
	}
	return Work(float64(p.Now().Sub(start)) * c.speed)
}
