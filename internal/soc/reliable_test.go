package soc

import (
	"testing"
	"time"

	"k2/internal/sim"
)

// scriptFilter injects a fixed verdict for the nth transmission attempt
// matching the selector; everything else passes clean.
type scriptFilter struct {
	wantAck bool
	hit     int // 1-based attempt index to fault; 0 = every attempt
	verdict MailVerdict
	seen    int
}

func (f *scriptFilter) FilterMail(from, to DomainID, msg Message, ack bool) MailVerdict {
	if ack != f.wantAck {
		return MailVerdict{}
	}
	f.seen++
	if f.hit == 0 || f.seen == f.hit {
		return f.verdict
	}
	return MailVerdict{}
}

func newReliableSoC() (*sim.Engine, *SoC) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	rel := DefaultReliableParams()
	cfg.Reliable = &rel
	return e, New(e, cfg)
}

// collect spawns a receiver draining domain d's inbox into the returned slice.
func collect(e *sim.Engine, s *SoC, d DomainID) *[]Message {
	var got []Message
	e.Spawn("rx", func(p *sim.Proc) {
		for {
			msg, _ := s.Mailbox.RecvFrom(p, d)
			got = append(got, msg)
		}
	})
	return &got
}

// A duplicated transmission must reach the dispatcher exactly once: the
// second copy arrives after the original and is suppressed by the receiver's
// seen-set (but still acknowledged).
func TestReliableDuplicateAfterOriginalDelivered(t *testing.T) {
	e, s := newReliableSoC()
	s.Mailbox.SetFilter(&scriptFilter{hit: 1, verdict: MailVerdict{Duplicate: true}})
	got := collect(e, s, Weak)
	e.Spawn("tx", func(p *sim.Proc) {
		s.Mailbox.SendAsync(Strong, Weak, NewMessage(MsgGeneric, 77, 0))
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 || (*got)[0].Payload() != 77 {
		t.Fatalf("received %v, want the message exactly once", *got)
	}
	if s.Mailbox.Stats.Duplicated != 1 || s.Mailbox.Stats.Deduped != 1 {
		t.Fatalf("stats = %+v, want 1 duplicated / 1 deduped", s.Mailbox.Stats)
	}
	if s.Mailbox.Stats.Failed != 0 {
		t.Fatal("a duplicated mail must still be acknowledged")
	}
}

// When the ack is lost the sender retransmits a message the receiver already
// processed: the retransmission must be deduplicated AND re-acknowledged, or
// the sender would retry until exhaustion.
func TestReliableLostAckRetransmitIsDeduped(t *testing.T) {
	e, s := newReliableSoC()
	s.Mailbox.SetFilter(&scriptFilter{wantAck: true, hit: 1, verdict: MailVerdict{Drop: true}})
	got := collect(e, s, Weak)
	e.Spawn("tx", func(p *sim.Proc) {
		s.Mailbox.SendAsync(Strong, Weak, NewMessage(MsgGeneric, 5, 0))
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("received %d copies, want 1", len(*got))
	}
	st := s.Mailbox.Stats
	if st.AcksDropped != 1 || st.Retransmits != 1 || st.Deduped != 1 {
		t.Fatalf("stats = %+v, want 1 ack dropped / 1 retransmit / 1 deduped", st)
	}
	if st.Failed != 0 {
		t.Fatal("the re-ack must stop the retry loop; send reported failed")
	}
}

// Retry exhaustion must surface as a delivery failure (callback + counter),
// not as an infinite retransmission loop.
func TestReliableRetryExhaustionFails(t *testing.T) {
	e, s := newReliableSoC()
	s.Mailbox.SetFilter(&scriptFilter{verdict: MailVerdict{Drop: true}}) // lose every data mail
	var failed []Message
	s.Mailbox.OnDeliveryFailed = func(from, to DomainID, msg Message) {
		if from != Strong || to != Weak {
			t.Errorf("failure reported for %v->%v", from, to)
		}
		failed = append(failed, msg)
	}
	got := collect(e, s, Weak)
	e.Spawn("tx", func(p *sim.Proc) {
		s.Mailbox.SendAsync(Strong, Weak, NewMessage(MsgGeneric, 9, 0))
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 0 {
		t.Fatalf("received %d messages over a fully lossy link", len(*got))
	}
	if len(failed) != 1 || failed[0].Payload() != 9 {
		t.Fatalf("OnDeliveryFailed got %v, want the abandoned message once", failed)
	}
	rel := DefaultReliableParams()
	st := s.Mailbox.Stats
	if st.Failed != 1 || st.Retransmits != rel.MaxRetries {
		t.Fatalf("stats = %+v, want 1 failed after %d retransmits", st, rel.MaxRetries)
	}
}

// A clean reliable link must deliver in order, once each, with no filter.
func TestReliableCleanLinkInOrder(t *testing.T) {
	e, s := newReliableSoC()
	got := collect(e, s, Weak)
	e.Spawn("tx", func(p *sim.Proc) {
		for i := uint32(0); i < 5; i++ {
			s.Mailbox.SendAsync(Strong, Weak, NewMessage(MsgGeneric, i, i))
			p.Sleep(10 * time.Microsecond)
		}
	})
	if err := e.Run(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 5 {
		t.Fatalf("received %d, want 5", len(*got))
	}
	for i, m := range *got {
		if m.Payload() != uint32(i) {
			t.Fatalf("message %d has payload %d", i, m.Payload())
		}
	}
	st := s.Mailbox.Stats
	if st.Retransmits != 0 || st.Deduped != 0 || st.Failed != 0 {
		t.Fatalf("clean link produced transport noise: %+v", st)
	}
}
