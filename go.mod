module k2

go 1.22
