// Benchmarks regenerating every table and figure of the paper's evaluation
// (§9). Each benchmark runs the corresponding experiment and reports the
// headline numbers as custom metrics, so `go test -bench=. -benchmem`
// produces the full reproduction. DESIGN.md §3 maps paper artefacts to
// these targets; EXPERIMENTS.md records paper-vs-measured values.
package k2_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"k2/internal/core"
	"k2/internal/dsm"
	"k2/internal/experiment"
	"k2/internal/mem"
	"k2/internal/sim"
	"k2/internal/soc"
	"k2/internal/workload"
)

// cell parses a numeric table cell (strips trailing x/%), failing the
// benchmark on anything unparsable so a malformed table cannot silently
// report a 0 metric.
func cell(tb testing.TB, t experiment.Table, row, col int) float64 {
	tb.Helper()
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		tb.Fatalf("%s: no cell [%d][%d] (%d rows)", t.ID, row, col, len(t.Rows))
	}
	s := t.Rows[row][col]
	s = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x"), "+")
	s = strings.TrimPrefix(s, "+")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		tb.Fatalf("%s: cell [%d][%d] = %q is not numeric: %v", t.ID, row, col, t.Rows[row][col], err)
	}
	return v
}

func BenchmarkTable1PlatformConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Table1()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure1Trend(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.Figure1()
	}
	b.ReportMetric(cell(b, t, 0, 3), "A9@1200_mW")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 3), "M3@200_mW")
}

func BenchmarkTable3Power(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.Table3()
	}
	b.ReportMetric(cell(b, t, 0, 1), "M3_active_mW")
	b.ReportMetric(cell(b, t, 1, 1), "A9_350_active_mW")
	b.ReportMetric(cell(b, t, 2, 1), "A9_1200_active_mW")
}

func BenchmarkFigure6aDMAEnergy(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.Figure6a()
	}
	b.ReportMetric(cell(b, t, 1, 3), "K2_vs_Linux_4K_256K_x")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 3), "K2_vs_Linux_1M_16M_x")
}

func BenchmarkFigure6bExt2Energy(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.Figure6b()
	}
	b.ReportMetric(cell(b, t, 0, 3), "K2_vs_Linux_1K_x")
	b.ReportMetric(cell(b, t, 0, 2), "K2_1K_MBperJ") // paper figure labels 0.41
}

func BenchmarkFigure6cUDPEnergy(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.Figure6c()
	}
	b.ReportMetric(cell(b, t, 0, 3), "K2_vs_Linux_smallest_x")
}

func BenchmarkStandbyEstimate(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.StandbyEstimate()
	}
	b.ReportMetric(cell(b, t, 0, 2), "linux_days")
	b.ReportMetric(cell(b, t, 1, 2), "k2_days")
}

func BenchmarkTable4Alloc(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.Table4()
	}
	b.ReportMetric(cell(b, t, 0, 1), "alloc4K_main_us")
	b.ReportMetric(cell(b, t, 0, 3), "alloc4K_shadow_us")
	b.ReportMetric(cell(b, t, 3, 1)/1e3, "deflate_main_ms")
	b.ReportMetric(cell(b, t, 4, 3)/1e3, "inflate_shadow_ms")
}

func BenchmarkTable5DSMFault(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.Table5()
	}
	b.ReportMetric(cell(b, t, 5, 1), "main_sender_total_us")
	b.ReportMetric(cell(b, t, 5, 3), "shadow_sender_total_us")
}

func BenchmarkTable6SharedDMA(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.Table6()
	}
	b.ReportMetric(cell(b, t, 0, 1), "linux_4K_MBs")
	b.ReportMetric(cell(b, t, 0, 4), "k2_main_4K_MBs")
	b.ReportMetric(cell(b, t, 0, 5), "k2_shadow_4K_MBs")
	b.ReportMetric(cell(b, t, 3, 4), "k2_main_1M_MBs")
	b.ReportMetric(cell(b, t, 3, 5), "k2_shadow_1M_MBs")
}

func BenchmarkAblationSharedAllocator(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.AblationSharedAllocator()
	}
	b.ReportMetric(cell(b, t, 3, 1), "slowdown_x")
	b.ReportMetric(cell(b, t, 2, 1), "faults_per_alloc")
}

func BenchmarkAblationThreeState(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.AblationThreeState()
	}
	b.ReportMetric(cell(b, t, 0, 1), "twostate_singlewriter_us")
	b.ReportMetric(cell(b, t, 1, 1), "threestate_omap4_us")
}

func BenchmarkStandbyTimeline(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.StandbyTimeline()
	}
	b.ReportMetric(cell(b, t, 0, 2), "linux_days")
	b.ReportMetric(cell(b, t, 1, 2), "k2_days")
}

func BenchmarkTimeoutSensitivity(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.TimeoutSensitivity()
	}
	b.ReportMetric(cell(b, t, 0, 3), "ratio_1s_x")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 3), "ratio_10s_x")
}

func BenchmarkAblationInactiveClaim(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.AblationInactiveClaim()
	}
	b.ReportMetric(cell(b, t, 0, 2), "with_claim_MBperJ")
	b.ReportMetric(cell(b, t, 1, 2), "mailbox_only_MBperJ")
}

func BenchmarkAblationPlacementPolicy(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.AblationPlacementPolicy()
	}
	b.ReportMetric(cell(b, t, 0, 1), "frontier_unpinned_blocks")
	b.ReportMetric(cell(b, t, 1, 1), "vanilla_unpinned_blocks")
}

func BenchmarkAblationSuspendOverlap(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.AblationSuspendOverlap()
	}
	b.ReportMetric(cell(b, t, 0, 2), "overlapped_overhead_us")
	b.ReportMetric(cell(b, t, 1, 2), "sequential_overhead_us")
}

// BenchmarkEpisodeK2 and BenchmarkEpisodeLinux expose the raw episode
// machinery for profiling the simulator itself.
func benchmarkEpisode(b *testing.B, mode core.Mode) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		cfg := soc.DefaultConfig()
		cfg.StrongFreqMHz = 350
		o, err := core.Boot(eng, core.Options{Mode: mode, SoC: &cfg})
		if err != nil {
			b.Fatal(err)
		}
		res, err := workload.MeasureEpisode(eng, o, workload.DMA(o, 16<<10, 128<<10))
		if err != nil {
			b.Fatal(err)
		}
		if res.WorkSpan <= 0 || res.WorkSpan > time.Minute {
			b.Fatalf("implausible work span %v", res.WorkSpan)
		}
	}
}

func BenchmarkEpisodeK2(b *testing.B)    { benchmarkEpisode(b, core.K2Mode) }
func BenchmarkEpisodeLinux(b *testing.B) { benchmarkEpisode(b, core.LinuxMode) }

// BenchmarkEpisodeK2Parallel is BenchmarkEpisodeK2 on the parallel event
// scheduler (internal/pdes, 4 workers): same episode, same bytes, with
// event-queue maintenance spread over a worker pool. Compared against
// BenchmarkEpisodeK2 it prices the window-barrier overhead on a small
// topology; the 16-weak scale experiment is where the parallelism pays.
func BenchmarkEpisodeK2Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		cfg := soc.DefaultConfig()
		cfg.StrongFreqMHz = 350
		o, err := core.Boot(eng, core.Options{Mode: core.K2Mode, SoC: &cfg, EngineParallel: 4})
		if err != nil {
			b.Fatal(err)
		}
		res, err := workload.MeasureEpisode(eng, o, workload.DMA(o, 16<<10, 128<<10))
		if err != nil {
			b.Fatal(err)
		}
		if res.WorkSpan <= 0 || res.WorkSpan > time.Minute {
			b.Fatalf("implausible work span %v", res.WorkSpan)
		}
		eng.Shutdown() // stop the scheduler's worker goroutines
	}
}

// benchmarkReadFaultSharedPage measures the DSM read-fault path on a booted
// K2 platform: each round the owner re-dirties a shared page and a second
// weak kernel reads it back. Under two-state the read steals the only copy;
// under MSI the owner's upgrade invalidates the reader's replica and the
// read re-installs a Shared copy. The virtual fault latency the requester
// observes comes out as a custom metric.
func benchmarkReadFaultSharedPage(b *testing.B, proto dsm.Protocol) {
	const rounds = 64
	var faults int
	var mean time.Duration
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		prm := dsm.DefaultParams()
		prm.Protocol = proto
		o, err := core.Boot(eng, core.Options{Mode: core.K2Mode, WeakDomains: 2, DSMParams: &prm})
		if err != nil {
			b.Fatal(err)
		}
		pfn, err := o.Mem.Buddies[soc.Strong].AllocBoot(0, mem.Unmovable)
		if err != nil {
			b.Fatal(err)
		}
		o.DSM.Share(pfn)
		w2 := soc.DomainID(2)
		eng.Spawn("bench", func(p *sim.Proc) {
			// Move the page out of the strong domain once: that boot-time
			// transfer pays a bottom-half deferral neither steady state has.
			o.DSM.Write(p, o.S.Core(soc.Weak, 0), soc.Weak, pfn)
			o.DSM.ResetStats()
			for r := 0; r < rounds; r++ {
				o.DSM.Write(p, o.S.Core(soc.Weak, 0), soc.Weak, pfn)
				o.DSM.Read(p, o.S.Core(w2, 0), w2, pfn)
			}
			eng.Stop()
		})
		if err := eng.Run(sim.Time(time.Minute)); err != nil {
			b.Fatal(err)
		}
		rs := o.DSM.RequesterStats[w2]
		faults, mean = rs.Faults, rs.Mean()
	}
	if faults != rounds {
		b.Fatalf("reader faulted %d times over %d rounds", faults, rounds)
	}
	b.ReportMetric(float64(mean.Nanoseconds())/1e3, "virtual_us/fault")
}

func BenchmarkReadFaultSharedPageTwoState(b *testing.B) {
	benchmarkReadFaultSharedPage(b, dsm.TwoState)
}

func BenchmarkReadFaultSharedPageMSI(b *testing.B) {
	benchmarkReadFaultSharedPage(b, dsm.MSI)
}

// BenchmarkWriteInvalidateN measures the MSI write-fault path against a
// growing sharer set: N weak kernels hold Shared replicas and the owner's
// upgrade must invalidate every one with exact ack accounting before the
// write is granted.
func BenchmarkWriteInvalidateN(b *testing.B) {
	for _, sharers := range []int{1, 2, 4, 8} {
		sharers := sharers
		b.Run(fmt.Sprintf("sharers=%d", sharers), func(b *testing.B) {
			const rounds = 32
			var sent, acked int
			var mean time.Duration
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine()
				prm := dsm.DefaultParams()
				prm.Protocol = dsm.MSI
				o, err := core.Boot(eng, core.Options{Mode: core.K2Mode, WeakDomains: sharers + 1, DSMParams: &prm})
				if err != nil {
					b.Fatal(err)
				}
				pfn, err := o.Mem.Buddies[soc.Strong].AllocBoot(0, mem.Unmovable)
				if err != nil {
					b.Fatal(err)
				}
				o.DSM.Share(pfn)
				eng.Spawn("bench", func(p *sim.Proc) {
					o.DSM.Write(p, o.S.Core(soc.Weak, 0), soc.Weak, pfn)
					o.DSM.ResetStats()
					for r := 0; r < rounds; r++ {
						for k := 0; k < sharers; k++ {
							kd := soc.DomainID(2 + k)
							o.DSM.Read(p, o.S.Core(kd, 0), kd, pfn)
						}
						o.DSM.Write(p, o.S.Core(soc.Weak, 0), soc.Weak, pfn)
					}
					eng.Stop()
				})
				if err := eng.Run(sim.Time(time.Minute)); err != nil {
					b.Fatal(err)
				}
				c := o.DSM.Totals()
				sent, acked = c.InvalidationsSent, c.InvalidationsAcked
				mean = o.DSM.RequesterStats[soc.Weak].Mean()
			}
			if sent != rounds*sharers || acked != sent {
				b.Fatalf("invalidations sent/acked = %d/%d, want %d/%d",
					sent, acked, rounds*sharers, rounds*sharers)
			}
			b.ReportMetric(float64(mean.Nanoseconds())/1e3, "virtual_us/writefault")
			b.ReportMetric(float64(sent)/rounds, "invalidations/write")
		})
	}
}
