// Benchmarks regenerating every table and figure of the paper's evaluation
// (§9). Each benchmark runs the corresponding experiment and reports the
// headline numbers as custom metrics, so `go test -bench=. -benchmem`
// produces the full reproduction. DESIGN.md §3 maps paper artefacts to
// these targets; EXPERIMENTS.md records paper-vs-measured values.
package k2_test

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"k2/internal/core"
	"k2/internal/experiment"
	"k2/internal/sim"
	"k2/internal/soc"
	"k2/internal/workload"
)

// cell parses a numeric table cell (strips trailing x/%), failing the
// benchmark on anything unparsable so a malformed table cannot silently
// report a 0 metric.
func cell(tb testing.TB, t experiment.Table, row, col int) float64 {
	tb.Helper()
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		tb.Fatalf("%s: no cell [%d][%d] (%d rows)", t.ID, row, col, len(t.Rows))
	}
	s := t.Rows[row][col]
	s = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x"), "+")
	s = strings.TrimPrefix(s, "+")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		tb.Fatalf("%s: cell [%d][%d] = %q is not numeric: %v", t.ID, row, col, t.Rows[row][col], err)
	}
	return v
}

func BenchmarkTable1PlatformConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiment.Table1()
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure1Trend(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.Figure1()
	}
	b.ReportMetric(cell(b, t, 0, 3), "A9@1200_mW")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 3), "M3@200_mW")
}

func BenchmarkTable3Power(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.Table3()
	}
	b.ReportMetric(cell(b, t, 0, 1), "M3_active_mW")
	b.ReportMetric(cell(b, t, 1, 1), "A9_350_active_mW")
	b.ReportMetric(cell(b, t, 2, 1), "A9_1200_active_mW")
}

func BenchmarkFigure6aDMAEnergy(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.Figure6a()
	}
	b.ReportMetric(cell(b, t, 1, 3), "K2_vs_Linux_4K_256K_x")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 3), "K2_vs_Linux_1M_16M_x")
}

func BenchmarkFigure6bExt2Energy(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.Figure6b()
	}
	b.ReportMetric(cell(b, t, 0, 3), "K2_vs_Linux_1K_x")
	b.ReportMetric(cell(b, t, 0, 2), "K2_1K_MBperJ") // paper figure labels 0.41
}

func BenchmarkFigure6cUDPEnergy(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.Figure6c()
	}
	b.ReportMetric(cell(b, t, 0, 3), "K2_vs_Linux_smallest_x")
}

func BenchmarkStandbyEstimate(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.StandbyEstimate()
	}
	b.ReportMetric(cell(b, t, 0, 2), "linux_days")
	b.ReportMetric(cell(b, t, 1, 2), "k2_days")
}

func BenchmarkTable4Alloc(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.Table4()
	}
	b.ReportMetric(cell(b, t, 0, 1), "alloc4K_main_us")
	b.ReportMetric(cell(b, t, 0, 3), "alloc4K_shadow_us")
	b.ReportMetric(cell(b, t, 3, 1)/1e3, "deflate_main_ms")
	b.ReportMetric(cell(b, t, 4, 3)/1e3, "inflate_shadow_ms")
}

func BenchmarkTable5DSMFault(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.Table5()
	}
	b.ReportMetric(cell(b, t, 5, 1), "main_sender_total_us")
	b.ReportMetric(cell(b, t, 5, 3), "shadow_sender_total_us")
}

func BenchmarkTable6SharedDMA(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.Table6()
	}
	b.ReportMetric(cell(b, t, 0, 1), "linux_4K_MBs")
	b.ReportMetric(cell(b, t, 0, 4), "k2_main_4K_MBs")
	b.ReportMetric(cell(b, t, 0, 5), "k2_shadow_4K_MBs")
	b.ReportMetric(cell(b, t, 3, 4), "k2_main_1M_MBs")
	b.ReportMetric(cell(b, t, 3, 5), "k2_shadow_1M_MBs")
}

func BenchmarkAblationSharedAllocator(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.AblationSharedAllocator()
	}
	b.ReportMetric(cell(b, t, 3, 1), "slowdown_x")
	b.ReportMetric(cell(b, t, 2, 1), "faults_per_alloc")
}

func BenchmarkAblationThreeState(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.AblationThreeState()
	}
	b.ReportMetric(cell(b, t, 0, 1), "twostate_singlewriter_us")
	b.ReportMetric(cell(b, t, 1, 1), "threestate_omap4_us")
}

func BenchmarkStandbyTimeline(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.StandbyTimeline()
	}
	b.ReportMetric(cell(b, t, 0, 2), "linux_days")
	b.ReportMetric(cell(b, t, 1, 2), "k2_days")
}

func BenchmarkTimeoutSensitivity(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.TimeoutSensitivity()
	}
	b.ReportMetric(cell(b, t, 0, 3), "ratio_1s_x")
	b.ReportMetric(cell(b, t, len(t.Rows)-1, 3), "ratio_10s_x")
}

func BenchmarkAblationInactiveClaim(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.AblationInactiveClaim()
	}
	b.ReportMetric(cell(b, t, 0, 2), "with_claim_MBperJ")
	b.ReportMetric(cell(b, t, 1, 2), "mailbox_only_MBperJ")
}

func BenchmarkAblationPlacementPolicy(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.AblationPlacementPolicy()
	}
	b.ReportMetric(cell(b, t, 0, 1), "frontier_unpinned_blocks")
	b.ReportMetric(cell(b, t, 1, 1), "vanilla_unpinned_blocks")
}

func BenchmarkAblationSuspendOverlap(b *testing.B) {
	var t experiment.Table
	for i := 0; i < b.N; i++ {
		t = experiment.AblationSuspendOverlap()
	}
	b.ReportMetric(cell(b, t, 0, 2), "overlapped_overhead_us")
	b.ReportMetric(cell(b, t, 1, 2), "sequential_overhead_us")
}

// BenchmarkEpisodeK2 and BenchmarkEpisodeLinux expose the raw episode
// machinery for profiling the simulator itself.
func benchmarkEpisode(b *testing.B, mode core.Mode) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		cfg := soc.DefaultConfig()
		cfg.StrongFreqMHz = 350
		o, err := core.Boot(eng, core.Options{Mode: mode, SoC: &cfg})
		if err != nil {
			b.Fatal(err)
		}
		res, err := workload.MeasureEpisode(eng, o, workload.DMA(o, 16<<10, 128<<10))
		if err != nil {
			b.Fatal(err)
		}
		if res.WorkSpan <= 0 || res.WorkSpan > time.Minute {
			b.Fatalf("implausible work span %v", res.WorkSpan)
		}
	}
}

func BenchmarkEpisodeK2(b *testing.B)    { benchmarkEpisode(b, core.K2Mode) }
func BenchmarkEpisodeLinux(b *testing.B) { benchmarkEpisode(b, core.LinuxMode) }
