// Command k2bench regenerates every table and figure of the paper's
// evaluation (§9) on the simulated platform and prints them next to the
// paper's reported values.
//
// Usage:
//
//	k2bench                       # run everything
//	k2bench -only t4              # run a single experiment
//	k2bench -list                 # list experiment IDs
//	k2bench -json BENCH_k2.json   # write the machine-readable summary
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"k2/internal/experiment"
)

var experiments = []struct {
	id   string
	name string
	run  func() experiment.Table
}{
	{"t1", "Table 1 (platform cores)", experiment.Table1},
	{"f1", "Figure 1 (SoC trend)", experiment.Figure1},
	{"t2", "Table 2 analog (service classes)", experiment.Table2},
	{"t3", "Table 3 (core power)", experiment.Table3},
	{"f6a", "Figure 6(a) DMA energy", experiment.Figure6a},
	{"f6b", "Figure 6(b) ext2 energy", experiment.Figure6b},
	{"f6c", "Figure 6(c) UDP energy", experiment.Figure6c},
	{"standby", "Standby estimate (§9.2)", experiment.StandbyEstimate},
	{"timeline", "Standby timeline (§9.2, simulated hours)", experiment.StandbyTimeline},
	{"timeout", "Sensitivity: inactive timeout", experiment.TimeoutSensitivity},
	{"day", "Day-in-life (foreground + background)", experiment.DayInLife},
	{"t4", "Table 4 (allocation latency)", experiment.Table4},
	{"t5", "Table 5 (DSM fault breakdown)", experiment.Table5},
	{"t6", "Table 6 (shared DMA throughput)", experiment.Table6},
	{"a1", "Ablation §9.3 (shadowed allocator)", experiment.AblationSharedAllocator},
	{"a2", "Ablation §6.3 (three-state protocol)", experiment.AblationThreeState},
	{"a3", "Ablation DESIGN §5 (inactive-peer claim)", experiment.AblationInactiveClaim},
	{"a4", "Ablation §6.2 (movable placement)", experiment.AblationPlacementPolicy},
	{"a5", "Ablation §8 (suspend-ack overlap)", experiment.AblationSuspendOverlap},
	{"scale", "Scale (1/2/4 weak domains)", experiment.Scale},
	{"faults", "Fault injection + recovery", experiment.Faults},
}

func main() {
	only := flag.String("only", "", "comma-separated experiment ids to run (see -list)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text, csv or markdown")
	jsonPath := flag.String("json", "", "write the machine-readable benchmark summary to this path and exit")
	seed := flag.Int64("seed", experiment.FaultSeed, "PRNG seed for the fault-injection experiment")
	flag.Parse()
	experiment.FaultSeed = *seed

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "k2bench:", err)
			os.Exit(1)
		}
		data := experiment.MeasureBench()
		if err := data.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "k2bench:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "k2bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
		return
	}

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-8s %s\n", e.id, e.name)
		}
		return
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	ran := 0
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		tab := e.run()
		switch *format {
		case "text":
			fmt.Println(tab.String())
		case "markdown":
			fmt.Println(tab.Markdown())
		case "csv":
			fmt.Printf("## %s\n", tab.ID)
			if err := tab.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "k2bench:", err)
				os.Exit(1)
			}
			fmt.Println()
		default:
			fmt.Fprintf(os.Stderr, "k2bench: unknown -format %q\n", *format)
			os.Exit(2)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "k2bench: no experiment matched; try -list")
		os.Exit(1)
	}
}
