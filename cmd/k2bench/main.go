// Command k2bench regenerates every table and figure of the paper's
// evaluation (§9) on the simulated platform and prints them next to the
// paper's reported values.
//
// Independent experiments fan out over a worker pool (-parallel, default
// GOMAXPROCS); each experiment owns its private simulation engines, so the
// tables are byte-identical at any parallelism. The -json summary records
// per-experiment wall-clock, events-dispatched and events-per-second
// telemetry alongside the structured results.
//
// Usage:
//
//	k2bench                       # run everything
//	k2bench -only t4              # run a single experiment
//	k2bench -list                 # list experiment IDs
//	k2bench -parallel 8           # worker pool size (default GOMAXPROCS)
//	k2bench -json BENCH_k2.json   # write the machine-readable summary
//	k2bench -cpuprofile cpu.pprof # profile the run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"k2/internal/experiment"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "k2bench:", err)
	os.Exit(1)
}

func main() {
	only := flag.String("only", "", "comma-separated experiment ids to run (see -list)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text, csv or markdown")
	jsonPath := flag.String("json", "", "write the machine-readable benchmark summary to this path and exit")
	seed := flag.Int64("seed", experiment.FaultSeed, "PRNG seed for the fault-injection experiment")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "experiments to run concurrently")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the run to this path")
	flag.Parse()
	experiment.FaultSeed = *seed

	if *parallel < 1 {
		fmt.Fprintln(os.Stderr, "k2bench: -parallel must be at least 1")
		os.Exit(2)
	}

	if *list {
		for _, d := range experiment.Registry() {
			fmt.Printf("%-8s %s\n", d.ID, d.Name)
		}
		return
	}

	formatSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "format" {
			formatSet = true
		}
	})
	if *jsonPath != "" && formatSet {
		fmt.Fprintln(os.Stderr, "k2bench: -json writes JSON; it conflicts with -format")
		os.Exit(2)
	}
	switch *format {
	case "text", "markdown", "csv":
	default:
		fmt.Fprintf(os.Stderr, "k2bench: unknown -format %q\n", *format)
		os.Exit(2)
	}

	defs := experiment.Select(*only)
	if len(defs) == 0 {
		fmt.Fprintln(os.Stderr, "k2bench: no experiment matched; try -list")
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
		}()
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		data := experiment.MeasureBench(defs, *parallel)
		if err := data.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
		return
	}

	results := experiment.Runner{Parallel: *parallel}.RunContext(context.Background(), defs)
	for _, r := range results {
		switch *format {
		case "text":
			fmt.Println(r.Table.String())
		case "markdown":
			fmt.Println(r.Table.Markdown())
		case "csv":
			fmt.Printf("## %s\n", r.Table.ID)
			if err := r.Table.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	}
}
