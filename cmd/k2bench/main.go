// Command k2bench regenerates every table and figure of the paper's
// evaluation (§9) on the simulated platform and prints them next to the
// paper's reported values.
//
// Independent experiments fan out over a worker pool (-parallel, default
// GOMAXPROCS); each experiment owns its private simulation engines, so the
// tables are byte-identical at any parallelism. The -json summary records
// per-experiment wall-clock, events-dispatched and events-per-second
// telemetry alongside the structured results.
//
// Usage:
//
//	k2bench                       # run everything
//	k2bench -only t4              # run a single experiment
//	k2bench -list                 # list experiment IDs
//	k2bench -parallel 8           # worker pool size (default GOMAXPROCS)
//	k2bench -json BENCH_k2.json   # write the machine-readable summary
//	k2bench -cpuprofile cpu.pprof # profile the run
//	k2bench -chaos -sweep=256     # chaos sweep: 256 storms, all oracles
//	k2bench -chaos -storm='crash:weak@60ms+50ms' -seed=7   # replay one storm
//	k2bench -dsm-protocol=msi     # MSI read-replication DSM instead of two-state
//	k2bench -checkpoint-demo      # shrink the planted-bug storm cold vs from
//	                              # the boot checkpoint; report events saved
//	k2bench -only=replication -replicas=3 -weakdomains=16 -sweep=8
//	                              # replication ablation at one degree; exits 1
//	                              # if any storm run violates an oracle
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"k2/internal/chaos"
	"k2/internal/dsm"
	"k2/internal/experiment"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "k2bench:", err)
	os.Exit(1)
}

// runChaos handles -chaos: either replay one explicit storm (the shape a
// repro line takes) or run the full seeded sweep. Any oracle violation
// prints a copy-pasteable repro command and exits 1.
func runChaos(seed int64, weak, sweep int, storm string, parallel int, proto dsm.Protocol) {
	if storm != "" {
		st, err := chaos.ParseStorm(storm)
		if err != nil {
			fatal(err)
		}
		base := chaos.Run(chaos.Config{WeakDomains: weak, Protocol: proto, Storm: &chaos.Storm{}})
		r := chaos.Run(chaos.Config{Seed: seed, WeakDomains: weak, Protocol: proto, Storm: &st})
		vs := append(r.Violations, chaos.Diverges(base, r)...)
		fmt.Printf("storm: %s\n", st)
		fmt.Printf("deaths=%d reboots=%d dropped=%d retransmits=%d span=%.1fms energy=%.2fmJ\n",
			r.Deaths, r.Reboots, r.Mail.Dropped, r.Mail.Retransmits, r.SpanMS, r.EnergyMJ)
		if len(vs) > 0 {
			for _, v := range vs {
				fmt.Println("FAIL", v)
			}
			fmt.Println("repro:", chaos.ReproCommand(seed, weak, st, proto))
			os.Exit(1)
		}
		fmt.Println("ok: all oracles passed")
		return
	}
	d := experiment.MeasureChaosSweep(seed, weak, sweep, parallel)
	fmt.Print(d.Table().String())
	if d.Failures > 0 {
		os.Exit(1)
	}
}

func main() {
	only := flag.String("only", "", "comma-separated experiment ids to run (see -list)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	format := flag.String("format", "text", "output format: text, csv or markdown")
	jsonPath := flag.String("json", "", "write the machine-readable benchmark summary to this path and exit")
	seed := flag.Int64("seed", experiment.FaultSeed, "PRNG seed for the fault-injection and chaos experiments")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "experiments to run concurrently")
	chaosMode := flag.Bool("chaos", false, "run the chaos sweep (or replay one -storm) and exit non-zero on any oracle violation")
	sweep := flag.Int("sweep", 256, "storms per chaos sweep (with -chaos)")
	stormFlag := flag.String("storm", "", "explicit storm schedule to replay (with -chaos; see a repro line for the syntax)")
	weakDomains := flag.Int("weakdomains", 2, "weak domains on the chaos/replication platform, 1-64 (with -chaos or -only=replication)")
	replicas := flag.Int("replicas", 0, "replication degree for the replication ablation, 0-8 (0 = the full R in {1,2,3} sweep)")
	ckptDemo := flag.Bool("checkpoint-demo", false, "shrink the planted-bug storm cold and from the boot checkpoint, print the replayed-event saving, and exit")
	protoFlag := flag.String("dsm-protocol", "", "DSM coherence protocol: twostate (default) or msi")
	enginePar := flag.Int("engine-parallel", 1, "event-scheduler workers per simulation engine (1 = sequential; output is byte-identical at any value)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the run to this path")
	flag.Parse()
	experiment.FaultSeed = *seed
	experiment.ChaosSeed = *seed
	experiment.ReplicationSeed = *seed
	if *weakDomains < 1 || *weakDomains > 64 {
		fmt.Fprintln(os.Stderr, "k2bench: -weakdomains must be between 1 and 64")
		os.Exit(2)
	}
	if *replicas < 0 || *replicas > 8 {
		fmt.Fprintln(os.Stderr, "k2bench: -replicas must be between 0 and 8")
		os.Exit(2)
	}
	experiment.Replicas = *replicas
	if *enginePar < 1 {
		fmt.Fprintln(os.Stderr, "k2bench: -engine-parallel must be at least 1")
		os.Exit(2)
	}
	experiment.EngineParallel = *enginePar
	proto, err := dsm.ParseProtocol(*protoFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "k2bench:", err)
		os.Exit(2)
	}
	experiment.DSMProtocol = proto

	if *parallel < 1 {
		fmt.Fprintln(os.Stderr, "k2bench: -parallel must be at least 1")
		os.Exit(2)
	}
	if *ckptDemo {
		cold, warm := chaos.CheckpointDemo(*weakDomains, 0)
		fmt.Printf("storm:  %s\n", cold.Storm)
		fmt.Printf("shrunk: %s (in %d predicate runs)\n", cold.Shrunk, cold.Runs)
		fmt.Printf("events replayed: cold=%d checkpointed=%d\n", cold.Events, warm.Events)
		if warm.Shrunk.String() != cold.Shrunk.String() {
			fmt.Fprintf(os.Stderr, "k2bench: checkpointed shrink found %q, cold found %q\n", warm.Shrunk, cold.Shrunk)
			os.Exit(1)
		}
		if warm.Events >= cold.Events {
			fmt.Fprintln(os.Stderr, "k2bench: checkpointing saved no replayed events")
			os.Exit(1)
		}
		fmt.Printf("saved:  %d events (%.1f%%) by forking each candidate from the boot checkpoint\n",
			cold.Events-warm.Events, 100*(1-float64(warm.Events)/float64(cold.Events)))
		return
	}
	if !*chaosMode && *stormFlag != "" {
		fmt.Fprintln(os.Stderr, "k2bench: -storm requires -chaos")
		os.Exit(2)
	}
	if *chaosMode {
		if *sweep < 1 {
			fmt.Fprintln(os.Stderr, "k2bench: -sweep must be at least 1")
			os.Exit(2)
		}
		runChaos(*seed, *weakDomains, *sweep, *stormFlag, *parallel, proto)
		return
	}

	if *list {
		for _, d := range experiment.Registry() {
			fmt.Printf("%-8s %s\n", d.ID, d.Name)
		}
		return
	}

	// Flags the user set explicitly parameterize the selected experiments
	// (via DefFor, the same binding k2d dispatches); defaults leave every
	// registry entry untouched so the default tables stay byte-identical.
	formatSet := false
	var params experiment.Params
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "format":
			formatSet = true
		case "seed":
			params.Seed = *seed
		case "weakdomains":
			params.WeakDomains = *weakDomains
		case "sweep":
			params.Sweep = *sweep
		case "replicas":
			params.Replicas = *replicas
		}
	})
	if *jsonPath != "" && formatSet {
		fmt.Fprintln(os.Stderr, "k2bench: -json writes JSON; it conflicts with -format")
		os.Exit(2)
	}
	switch *format {
	case "text", "markdown", "csv":
	default:
		fmt.Fprintf(os.Stderr, "k2bench: unknown -format %q\n", *format)
		os.Exit(2)
	}

	defs := experiment.Select(*only)
	if len(defs) == 0 {
		fmt.Fprintln(os.Stderr, "k2bench: no experiment matched; try -list")
		os.Exit(1)
	}
	if params != (experiment.Params{}) {
		for i, d := range defs {
			if bound, ok := experiment.DefFor(d.ID, params); ok {
				defs[i] = bound
			}
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
		}()
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		data := experiment.MeasureBench(defs, *parallel)
		if err := data.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
		return
	}

	results := experiment.Runner{Parallel: *parallel}.RunContext(context.Background(), defs)
	failed := false
	for _, r := range results {
		switch *format {
		case "text":
			fmt.Println(r.Table.String())
		case "markdown":
			fmt.Println(r.Table.Markdown())
		case "csv":
			fmt.Printf("## %s\n", r.Table.ID)
			if err := r.Table.WriteCSV(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		for _, n := range r.Table.Notes {
			if strings.HasPrefix(n, "FAIL") {
				failed = true
			}
		}
	}
	if failed {
		// A FAIL note is an oracle violation (chaos/replication storms carry
		// their repro lines in the notes); make it a CI-visible exit.
		os.Exit(1)
	}
}
