// Command k2sim runs one light-task episode on the simulated platform and
// reports its energy, efficiency and timing.
//
// Usage:
//
//	k2sim -os k2 -workload dma -batch 4096 -total 262144
//	k2sim -os linux -workload ext2 -size 262144 -files 8
//	k2sim -os k2 -workload udp -batch 1024 -total 65536 -mhz 350
//	k2sim -os k2 -workload dma -weakdomains 4 -v
//
// -weakdomains boots a topology with the given number of weak (M3-class)
// domains, one shadow kernel each; the default of 1 is the calibrated
// OMAP4 platform.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"k2/internal/core"
	"k2/internal/sim"
	"k2/internal/soc"
	"k2/internal/trace"
	"k2/internal/workload"
)

func main() {
	osFlag := flag.String("os", "k2", "operating system: k2 or linux")
	wl := flag.String("workload", "dma", "workload: dma, ext2 or udp")
	batch := flag.Int64("batch", 4096, "batch size in bytes (dma, udp)")
	total := flag.Int64("total", 262144, "total bytes (dma, udp)")
	size := flag.Int("size", 262144, "file size in bytes (ext2)")
	files := flag.Int("files", 8, "file count (ext2)")
	mhz := flag.Int("mhz", 350, "strong-core frequency (350-1200)")
	weakDomains := flag.Int("weakdomains", 1, "number of weak domains (each runs its own shadow kernel under K2)")
	verbose := flag.Bool("v", false, "print DSM and scheduler statistics")
	traceKinds := flag.String("trace", "", "comma-separated trace kinds to dump (e.g. dsm,sched,power; 'all' for everything)")
	flag.Parse()

	var mode core.Mode
	switch *osFlag {
	case "k2":
		mode = core.K2Mode
	case "linux":
		mode = core.LinuxMode
	default:
		fmt.Fprintf(os.Stderr, "k2sim: unknown -os %q\n", *osFlag)
		os.Exit(2)
	}

	if *weakDomains < 1 {
		fmt.Fprintln(os.Stderr, "k2sim: -weakdomains must be at least 1")
		os.Exit(2)
	}
	eng := sim.NewEngine()
	cfg := soc.DefaultConfig()
	cfg.StrongFreqMHz = *mhz
	o, err := core.Boot(eng, core.Options{Mode: mode, SoC: &cfg, WeakDomains: *weakDomains})
	if err != nil {
		fmt.Fprintln(os.Stderr, "k2sim:", err)
		os.Exit(1)
	}

	var task workload.Task
	switch *wl {
	case "dma":
		task = workload.DMA(o, *batch, *total)
	case "ext2":
		task = workload.Ext2(o, *size, *files)
	case "udp":
		task = workload.UDP(o, *batch, *total)
	default:
		fmt.Fprintf(os.Stderr, "k2sim: unknown -workload %q\n", *wl)
		os.Exit(2)
	}

	res, err := workload.MeasureEpisode(eng, o, task)
	if err != nil {
		fmt.Fprintln(os.Stderr, "k2sim:", err)
		os.Exit(1)
	}

	fmt.Printf("os:           %v (strong @ %d MHz)\n", mode, *mhz)
	fmt.Printf("workload:     %s\n", *wl)
	fmt.Printf("payload:      %d bytes\n", res.Bytes)
	fmt.Printf("work span:    %v (%.2f MB/s)\n", res.WorkSpan, res.ThroughputMBs())
	fmt.Printf("episode:      %.3f mJ -> %.2f MB/J\n", res.EnergyJ*1e3, res.EfficiencyMBJ())
	fmt.Printf("strong wakes: %d\n", res.StrongWakes)
	if *verbose && o.DSM != nil {
		for _, k := range o.Kernels() {
			st := o.DSM.RequesterStats[k]
			fmt.Printf("dsm[%v]:    %d faults (%d local claims), mean %v\n",
				k, st.Faults, st.Claims, st.Mean())
		}
		fmt.Printf("sched:        %d suspends, %d resumes\n",
			o.Sched.SuspendsSent, o.Sched.ResumesSent)
		for id := range o.S.Domains {
			k := soc.DomainID(id)
			fmt.Printf("mailbox:      %d to %v\n", o.S.Mailbox.Sent(k), k)
		}
	}
	if *traceKinds != "" {
		if *traceKinds != "all" {
			var kinds []trace.Kind
			for _, name := range strings.Split(*traceKinds, ",") {
				k, err := trace.ParseKind(strings.TrimSpace(name))
				if err != nil {
					fmt.Fprintln(os.Stderr, "k2sim:", err)
					os.Exit(2)
				}
				kinds = append(kinds, k)
			}
			// Filter the dump to the requested kinds.
			fmt.Println("-- trace --")
			for _, k := range kinds {
				for _, ev := range o.Trace.Filter(k) {
					fmt.Println(ev)
				}
			}
			return
		}
		fmt.Println("-- trace --")
		if err := o.Trace.Dump(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "k2sim:", err)
		}
	}
}
