// Command k2sim runs one light-task episode on the simulated platform and
// reports its energy, efficiency and timing.
//
// Usage:
//
//	k2sim -os k2 -workload dma -batch 4096 -total 262144
//	k2sim -os linux -workload ext2 -size 262144 -files 8
//	k2sim -os k2 -workload udp -batch 1024 -total 65536 -mhz 350
//	k2sim -os k2 -workload dma -weakdomains 4 -v
//	k2sim -os k2 -workload dma -crash 50ms -reboot 30ms -drop 0.01 -seed 7
//	k2sim -os k2 -workload replica -replicas 3 -weakdomains 6 -crash 20ms -reboot 15ms
//
// -weakdomains boots a topology with the given number of weak (M3-class)
// domains, one shadow kernel each (1-64); the default of 1 is the
// calibrated OMAP4 platform.
//
// -replicas boots the N-modular-redundancy layer (K2 mode only) and the
// replica workload runs one R-replica voting group to completion: the
// episode's figure of merit is the commit cadence — crash a replica's
// domain mid-run and the surviving quorum votes straight past the fault
// the watchdog would otherwise take milliseconds to repair.
//
// The fault flags inject deterministic faults (seeded by -seed): -crash
// kills weak domain 1 at the given virtual time (-reboot revives it that
// long after), and -drop loses that fraction of all mailbox traffic. Any
// fault flag also enables the recovery stack — reliable mailbox transport,
// the shadow-kernel watchdog, and the DSM owner timeout — so the system
// survives; a faulted episode that cannot complete (e.g. a crash with no
// reboot) is reported, not treated as a simulator error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"k2/internal/core"
	"k2/internal/dsm"
	"k2/internal/fault"
	"k2/internal/replica"
	"k2/internal/sim"
	"k2/internal/soc"
	"k2/internal/trace"
	"k2/internal/workload"
)

func main() {
	osFlag := flag.String("os", "k2", "operating system: k2 or linux")
	wl := flag.String("workload", "dma", "workload: dma, ext2 or udp")
	batch := flag.Int64("batch", 4096, "batch size in bytes (dma, udp)")
	total := flag.Int64("total", 262144, "total bytes (dma, udp)")
	size := flag.Int("size", 262144, "file size in bytes (ext2)")
	files := flag.Int("files", 8, "file count (ext2)")
	mhz := flag.Int("mhz", 350, "strong-core frequency (350-1200)")
	weakDomains := flag.Int("weakdomains", 1, "number of weak domains, 1-64 (each runs its own shadow kernel under K2)")
	replicas := flag.Int("replicas", 0, "replication degree for the NMR layer, 0-8 (0 = off; K2 mode only; required by -workload replica)")
	verbose := flag.Bool("v", false, "print DSM and scheduler statistics")
	traceKinds := flag.String("trace", "", "comma-separated trace kinds to dump (e.g. dsm,sched,power; 'all' for everything)")
	seed := flag.Int64("seed", 1, "PRNG seed for fault injection")
	crashAt := flag.Duration("crash", 0, "crash weak domain 1 at this virtual time (0 = no crash)")
	rebootAfter := flag.Duration("reboot", 0, "reboot the crashed domain this long after the crash (0 = stays down)")
	dropP := flag.Float64("drop", 0, "probability each mailbox transmission is dropped (all links)")
	protoFlag := flag.String("dsm-protocol", "", "DSM coherence protocol: twostate (default) or msi (K2 mode)")
	enginePar := flag.Int("engine-parallel", 1, "event-scheduler workers for the simulation engine (1 = sequential; output is byte-identical at any value)")
	flag.Parse()

	faulty := *crashAt > 0 || *dropP > 0

	proto, err := dsm.ParseProtocol(*protoFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "k2sim:", err)
		os.Exit(2)
	}

	var mode core.Mode
	switch *osFlag {
	case "k2":
		mode = core.K2Mode
	case "linux":
		mode = core.LinuxMode
	default:
		fmt.Fprintf(os.Stderr, "k2sim: unknown -os %q\n", *osFlag)
		os.Exit(2)
	}

	if *weakDomains < 1 || *weakDomains > 64 {
		fmt.Fprintln(os.Stderr, "k2sim: -weakdomains must be between 1 and 64")
		os.Exit(2)
	}
	if *replicas < 0 || *replicas > 8 {
		fmt.Fprintln(os.Stderr, "k2sim: -replicas must be between 0 and 8")
		os.Exit(2)
	}
	if *replicas > 0 && mode != core.K2Mode {
		fmt.Fprintln(os.Stderr, "k2sim: -replicas needs -os k2 (replication runs on shadow kernels)")
		os.Exit(2)
	}
	if *replicas > *weakDomains {
		fmt.Fprintf(os.Stderr, "k2sim: %d replicas need %d distinct weak domains, -weakdomains gives %d\n",
			*replicas, *replicas, *weakDomains)
		os.Exit(2)
	}
	if *wl == "replica" && *replicas < 1 {
		fmt.Fprintln(os.Stderr, "k2sim: -workload replica needs -replicas (1-8)")
		os.Exit(2)
	}
	if *dropP < 0 || *dropP > 1 {
		fmt.Fprintln(os.Stderr, "k2sim: -drop is a probability and must be in [0, 1]")
		os.Exit(2)
	}
	if *crashAt < 0 || *rebootAfter < 0 {
		fmt.Fprintln(os.Stderr, "k2sim: -crash and -reboot must not be negative")
		os.Exit(2)
	}
	if *rebootAfter > 0 && *crashAt == 0 {
		fmt.Fprintln(os.Stderr, "k2sim: -reboot needs a -crash time to reboot from")
		os.Exit(2)
	}
	if *enginePar < 1 {
		fmt.Fprintln(os.Stderr, "k2sim: -engine-parallel must be at least 1")
		os.Exit(2)
	}
	eng := sim.NewEngine()
	cfg := soc.DefaultConfig()
	cfg.StrongFreqMHz = *mhz
	opts := core.Options{Mode: mode, SoC: &cfg, WeakDomains: *weakDomains, EngineParallel: *enginePar}
	if *replicas > 0 {
		// Replication rides the recovery stack: reliable vote transport and
		// the watchdog backstop underneath the voting quorum.
		rel := soc.DefaultReliableParams()
		cfg.Reliable = &rel
		wd := core.DefaultWatchdogParams()
		opts.Watchdog = &wd
		opts.Replication = &replica.Params{R: *replicas, VoteTimeout: 500 * time.Microsecond}
	}
	if faulty {
		// Injected faults need the recovery stack to be survivable.
		rel := soc.DefaultReliableParams()
		cfg.Reliable = &rel
		wd := core.DefaultWatchdogParams()
		opts.Watchdog = &wd
		if mode == core.K2Mode {
			prm := dsm.DefaultParams()
			prm.OwnerTimeout = 200 * time.Microsecond
			prm.Protocol = proto
			opts.DSMParams = &prm
		}
	} else if proto != dsm.TwoState && mode == core.K2Mode {
		prm := dsm.DefaultParams()
		prm.Protocol = proto
		opts.DSMParams = &prm
	}
	o, err := core.Boot(eng, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "k2sim:", err)
		os.Exit(1)
	}

	plan := fault.NewPlan(*seed)
	if *crashAt > 0 {
		plan.CrashAt(soc.Weak, *crashAt, *rebootAfter)
	}
	if *dropP > 0 {
		plan.AllLinks(fault.LinkFaults{DropP: *dropP})
	}
	if faulty {
		plan.Arm(o.S, o.Trace)
	}

	if *wl == "replica" {
		runReplicaEpisode(eng, o, plan, faulty, *seed, *mhz, *replicas, *weakDomains)
		return
	}

	var task workload.Task
	switch *wl {
	case "dma":
		task = workload.DMA(o, *batch, *total)
	case "ext2":
		task = workload.Ext2(o, *size, *files)
	case "udp":
		task = workload.UDP(o, *batch, *total)
	default:
		fmt.Fprintf(os.Stderr, "k2sim: unknown -workload %q\n", *wl)
		os.Exit(2)
	}

	cap := 2 * time.Hour
	if faulty {
		// Long enough for the episode protocol's inactive waits (3 x 5 s)
		// plus recovery; short enough that a crash with no reboot — which
		// leaves the episode unfinishable — gives up quickly.
		cap = 60 * time.Second
	}
	res, err := workload.MeasureEpisodeUntil(eng, o, task, cap)
	if err != nil {
		if !faulty {
			fmt.Fprintln(os.Stderr, "k2sim:", err)
			os.Exit(1)
		}
		// An injected fault can legitimately keep the episode from
		// finishing (crash with no reboot); report what happened instead
		// of failing.
		fmt.Printf("episode did not complete under injected faults: %v\n", err)
	}

	fmt.Printf("os:           %v (strong @ %d MHz)\n", mode, *mhz)
	fmt.Printf("workload:     %s\n", *wl)
	fmt.Printf("payload:      %d bytes\n", res.Bytes)
	fmt.Printf("work span:    %v (%.2f MB/s)\n", res.WorkSpan, res.ThroughputMBs())
	fmt.Printf("episode:      %.3f mJ -> %.2f MB/J\n", res.EnergyJ*1e3, res.EfficiencyMBJ())
	fmt.Printf("strong wakes: %d\n", res.StrongWakes)
	if faulty {
		fmt.Printf("faults:       %s (seed %d)\n", plan.Stats.Summary(), *seed)
		mst := o.S.Mailbox.Stats
		fmt.Printf("transport:    %d retransmits, %d deduped, %d delivery failures\n",
			mst.Retransmits, mst.Deduped, mst.Failed)
		if o.Watchdog != nil {
			for _, rec := range o.Watchdog.Deaths {
				fmt.Printf("watchdog:     %v declared dead at %v; reclaimed %d pages, %d blocks, %d locks in %v\n",
					rec.Domain, time.Duration(rec.DeclaredAt), rec.ReclaimedPages,
					rec.ReclaimedBlocks, rec.BrokenLocks,
					time.Duration(rec.RecoveredAt-rec.DeclaredAt))
			}
		}
	}
	if *verbose && o.DSM != nil {
		for _, k := range o.Kernels() {
			st := o.DSM.RequesterStats[k]
			fmt.Printf("dsm[%v]:    %d faults (%d local claims), mean %v\n",
				k, st.Faults, st.Claims, st.Mean())
		}
		fmt.Printf("sched:        %d suspends, %d resumes\n",
			o.Sched.SuspendsSent, o.Sched.ResumesSent)
		for id := range o.S.Domains {
			k := soc.DomainID(id)
			fmt.Printf("mailbox:      %d to %v\n", o.S.Mailbox.Sent(k), k)
		}
	}
	dumpTrace(o, *traceKinds)
}

// runReplicaEpisode runs one R-replica voting group to completion and
// reports the commit cadence: quorum commits mean faults were masked with
// zero added latency, timeout commits price a degraded set, and the max
// inter-commit gap is the workload-visible stall a fault caused.
func runReplicaEpisode(eng *sim.Engine, o *core.OS, plan *fault.Plan, faulty bool, seed int64, mhz, replicas, weakDomains int) {
	mach := replica.Machine{
		Init: 0x9E3779B97F4A7C15,
		Step: func(vp, s int, st uint64) uint64 {
			st += 0x9E3779B97F4A7C15 ^ uint64(vp*64+s)
			st ^= st >> 30
			st *= 0xBF58476D1CE4E5B9
			st ^= st >> 27
			return st
		},
		StepWork:     soc.Work(5 * time.Microsecond),
		StepsPerVote: 4,
		VotePoints:   32,
		Idle:         time.Millisecond,
	}
	g, err := o.Replicas.StartGroup(replica.GroupSpec{Name: "rep", Machine: mach})
	if err != nil {
		fmt.Fprintln(os.Stderr, "k2sim:", err)
		os.Exit(1)
	}
	eng.Spawn("episode-monitor", func(p *sim.Proc) {
		g.Done.Wait(p)
		p.Sleep(5 * time.Millisecond) // let re-integration traffic drain
		eng.Stop()
	})
	cap := 2 * time.Hour
	if faulty {
		cap = 60 * time.Second
	}
	if err := eng.Run(sim.Time(cap)); err != nil {
		fmt.Fprintln(os.Stderr, "k2sim:", err)
		os.Exit(1)
	}
	m := o.Replicas
	fmt.Printf("os:           %v (strong @ %d MHz)\n", core.K2Mode, mhz)
	fmt.Printf("workload:     replica (R=%d on %d weak domains)\n", replicas, weakDomains)
	if !g.Done.Fired() {
		fmt.Printf("group did not complete under injected faults: %d of %d vote points committed\n",
			g.Committed(), g.VotePoints())
	}
	fmt.Printf("vote points:  %d committed (%d quorum / %d timeout), %d votes accepted\n",
		g.Committed(), m.QuorumCommits, m.TimeoutCommits, m.Votes)
	fmt.Printf("outvoted:     %d replicas (%d re-integrations, %d manager sweeps)\n",
		m.Outvoted, m.Reintegrations, m.SweptDomains)
	var maxGap time.Duration
	for _, gap := range g.CommitGaps() {
		if gap > maxGap {
			maxGap = gap
		}
	}
	fmt.Printf("max commit gap: %v (vote-point period %v)\n", maxGap, mach.Idle)
	fmt.Printf("episode:      %.3f mJ platform energy\n", o.EnergyJ()*1e3)
	if faulty {
		fmt.Printf("faults:       %s (seed %d)\n", plan.Stats.Summary(), seed)
		for _, f := range m.Flags() {
			fmt.Printf("flag:         replica %d outvoted at point %d (%s) on %v, implicated=%v\n",
				f.Replica, f.VotePoint, f.Reason, f.Domain, f.Implicated)
		}
		if o.Watchdog != nil {
			for _, rec := range o.Watchdog.Deaths {
				fmt.Printf("watchdog:     %v declared dead at %v; reclaimed %d pages, %d blocks, %d locks in %v\n",
					rec.Domain, time.Duration(rec.DeclaredAt), rec.ReclaimedPages,
					rec.ReclaimedBlocks, rec.BrokenLocks,
					time.Duration(rec.RecoveredAt-rec.DeclaredAt))
			}
		}
	}
}

// dumpTrace prints the requested trace kinds (comma-separated, or "all").
func dumpTrace(o *core.OS, traceKinds string) {
	if traceKinds != "" {
		if traceKinds != "all" {
			var kinds []trace.Kind
			for _, name := range strings.Split(traceKinds, ",") {
				k, err := trace.ParseKind(strings.TrimSpace(name))
				if err != nil {
					fmt.Fprintln(os.Stderr, "k2sim:", err)
					os.Exit(2)
				}
				kinds = append(kinds, k)
			}
			// Filter the dump to the requested kinds.
			fmt.Println("-- trace --")
			for _, k := range kinds {
				for _, ev := range o.Trace.Filter(k) {
					fmt.Println(ev)
				}
			}
			return
		}
		fmt.Println("-- trace --")
		if err := o.Trace.Dump(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "k2sim:", err)
		}
	}
}
