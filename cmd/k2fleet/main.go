// Command k2fleet routes jobs across a fleet of k2d workers. The job API
// is wire-compatible with a single k2d — clients point at the router
// instead — but behind it every job's deterministic key (experiment, seed,
// weak_domains, sweep) consistent-hashes onto one worker, so the workers'
// result caches shard with the jobs; live NDJSON trace streams fan out
// through per-job hubs with bounded subscriber windows and exact drop
// accounting; and per-tenant token buckets shed excess load with honest
// Retry-After before it ever reaches a worker's queue.
//
// Workers join by heartbeating POST /v1/workers (`k2d -fleet` does this).
// A worker that misses its heartbeats — or fails a proxied request — is
// removed from the ring and every non-terminal job it owned is re-submitted
// to the key's new owner. Determinism makes that masking safe: the re-run
// can only produce the byte-identical result, so no job is lost and none
// is reported twice.
//
// Usage:
//
//	k2fleet                                  # serve on :9090
//	k2fleet -addr :9090 -heartbeat-ttl 6s    # expire silent workers
//	k2fleet -tenant-rate 50 -tenant-burst 100
//	k2fleet -tenant "gold=500:1000,free=5:10"
//
//	k2d -addr :9091 -fleet http://localhost:9090   # a worker joins
//	curl -X POST localhost:9090/v1/jobs -H 'X-K2-Tenant: gold' \
//	     -d '{"experiment":"t4"}'
//	curl localhost:9090/v1/jobs/f00000001?wait=30\&format=text
//	curl localhost:9090/v1/jobs/f00000001/trace
//	curl localhost:9090/metrics
//
// On SIGTERM/SIGINT the router drains: it stops admitting, waits for
// routed jobs to reach a terminal state within the grace period, then
// exits 0. Workers drain themselves on their own signals.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"k2/internal/fleet"
)

// parseTenantOverrides parses "name=rate:burst,name2=rate2:burst2".
func parseTenantOverrides(s string) (map[string]fleet.RateBurst, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]fleet.RateBurst)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		colon := strings.LastIndexByte(part, ':')
		if eq < 1 || colon <= eq {
			return nil, fmt.Errorf("bad tenant override %q (want name=rate:burst)", part)
		}
		rate, err1 := strconv.ParseFloat(part[eq+1:colon], 64)
		burst, err2 := strconv.ParseFloat(part[colon+1:], 64)
		if err1 != nil || err2 != nil || rate <= 0 || burst < 1 {
			return nil, fmt.Errorf("bad tenant override %q (want name=rate:burst)", part)
		}
		out[part[:eq]] = fleet.RateBurst{Rate: rate, Burst: burst}
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	heartbeatTTL := flag.Duration("heartbeat-ttl", 6*time.Second, "expire workers silent for this long (0 disables; deaths are then detected only by proxy errors)")
	tenantRate := flag.Float64("tenant-rate", 50, "default per-tenant quota: token-bucket refill rate in jobs/second")
	tenantBurst := flag.Float64("tenant-burst", 0, "default per-tenant burst capacity (0 = 2x rate)")
	tenantOverrides := flag.String("tenant", "", "per-tenant quota overrides, e.g. 'gold=500:1000,free=5:10'")
	maxFinished := flag.Int("max-finished", 4096, "terminal jobs kept queryable on the router")
	hubWindow := flag.Int("hub-window", 4096, "trace fan-out window: lines a subscriber may lag before dropping")
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace: how long routed jobs may finish after SIGTERM")
	flag.Parse()

	overrides, err := parseTenantOverrides(*tenantOverrides)
	if err != nil {
		fmt.Fprintf(os.Stderr, "k2fleet: %v\n", err)
		os.Exit(2)
	}
	if *tenantRate <= 0 || *maxFinished < 1 || *hubWindow < 1 || *grace < 0 {
		fmt.Fprintln(os.Stderr, "k2fleet: -tenant-rate must be > 0; -max-finished, -hub-window >= 1; -grace >= 0")
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "k2fleet: ", log.LstdFlags)
	rt := fleet.NewRouter(fleet.Config{
		HeartbeatTTL:    *heartbeatTTL,
		TenantRate:      *tenantRate,
		TenantBurst:     *tenantBurst,
		TenantOverrides: overrides,
		MaxFinished:     *maxFinished,
		HubWindow:       *hubWindow,
	})
	rt.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	httpSrv := &http.Server{Handler: rt.Handler()}
	logger.Printf("routing on %s (heartbeat TTL %v, tenant quota %g/s)", ln.Addr(), *heartbeatTTL, *tenantRate)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		logger.Fatal(err)
	case <-ctx.Done():
	}

	logger.Printf("signal received; draining (grace %v)", *grace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := rt.Drain(drainCtx); err != nil {
		logger.Printf("drain: %v", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
	logger.Printf("drained; exiting")
}
