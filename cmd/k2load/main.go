// Command k2load is the fleet's load-generation harness: it offers an
// open-loop arrival stream of jobs to a k2fleet router (or a single k2d —
// the job API is the same), follows every accepted job to its terminal
// state, optionally fans trace subscribers onto sampled jobs, and reports
// client-side accounting precise enough to diff against the service's
// /metrics counter for counter.
//
// Open-loop means arrivals are scheduled on the clock and never wait for
// completions: a slow or shedding service faces the full offered rate,
// which is the honest way to measure its shed point and tail latency.
//
// Usage:
//
//	k2load -addr http://localhost:9090 -jobs 100000 -rate 2000
//	k2load -jobs 1000 -rate 200 -mix 't1:3,t4:1' -seeds 16
//	k2load -jobs 1000 -subscribers 3 -sub-every 50   # trace fan-out load
//	k2load -jobs 1000 -tenants 'gold,free' -verify -out k2load.json
//
// Exit status: 0 when every accepted job reached exactly one terminal
// state, no byte-identity violation was observed, and (with -verify) the
// service's /metrics agreed with the client's tallies; 1 otherwise. With
// -require-done, failed/cancelled jobs also fail the run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"k2/internal/fleet"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:9090", "router (or k2d) base URL")
	jobs := flag.Int("jobs", 1000, "total arrivals to offer")
	rate := flag.Float64("rate", 0, "open-loop arrival rate in jobs/second (0 = as fast as possible)")
	mix := flag.String("mix", "t1", "experiment mix, e.g. 't1:3,t4:1' (weight defaults to 1)")
	seeds := flag.Int("seeds", 8, "distinct seeds cycled across arrivals (small = cache-heavy, large = simulation-heavy)")
	subscribers := flag.Int("subscribers", 0, "trace subscribers opened on every sampled job")
	subEvery := flag.Int("sub-every", 100, "sample every Nth accepted job for trace subscription")
	tenants := flag.String("tenants", "", "comma-separated tenant names to round-robin (empty = default tenant)")
	timeout := flag.Duration("timeout", 120*time.Second, "per-job accepted-to-terminal bound before the client counts it lost")
	verify := flag.Bool("verify", false, "diff client-side accounting against the service's /metrics")
	requireDone := flag.Bool("require-done", false, "also fail the run if any accepted job finished failed or cancelled")
	out := flag.String("out", "", "write the JSON report here as well as stdout")
	maxInflight := flag.Int("max-inflight", 512, "bound on concurrently outstanding arrivals (sockets)")
	flag.Parse()

	mixEntries, err := fleet.ParseMix(*mix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "k2load: %v\n", err)
		os.Exit(2)
	}
	if *jobs < 1 || *seeds < 1 || *subscribers < 0 || *subEvery < 1 {
		fmt.Fprintln(os.Stderr, "k2load: -jobs, -seeds, -sub-every must be >= 1 and -subscribers >= 0")
		os.Exit(2)
	}
	var tenantList []string
	if *tenants != "" {
		tenantList = strings.Split(*tenants, ",")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	rep, err := fleet.RunLoad(ctx, fleet.LoadConfig{
		URL:         strings.TrimRight(*addr, "/"),
		Jobs:        *jobs,
		Rate:        *rate,
		Mix:         mixEntries,
		Seeds:       *seeds,
		Subscribers: *subscribers,
		SubEvery:    *subEvery,
		Tenants:     tenantList,
		Timeout:     *timeout,
		Verify:      *verify,
		MaxInflight: *maxInflight,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "k2load: %v\n", err)
		os.Exit(2)
	}

	blob, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "k2load: %v\n", err)
			os.Exit(2)
		}
	}

	ok := rep.Lost == 0 && rep.ByteIdentityViolations == 0 && rep.RejectedOther == 0
	if *verify && !rep.Metrics.Matches {
		ok = false
	}
	if *requireDone && (rep.Failed > 0 || rep.Cancelled > 0) {
		ok = false
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "k2load: FAILED (lost jobs, identity violations, or metrics mismatch — see report)")
		os.Exit(1)
	}
}
