// Command k2d serves the K2 experiment registry as a long-lived,
// multi-tenant simulation service: jobs enter a bounded priority queue,
// admission control sheds load past the bound with 429s, a worker pool of
// private simulation engines runs them, and results, live NDJSON kernel
// traces and Prometheus metrics come back over HTTP.
//
// Determinism is preserved end to end: the same experiment and seed return
// byte-identical tables regardless of queue position or -parallel, so
// `curl .../v1/jobs/{id}?format=text` diffs clean against `k2bench -only`.
//
// Usage:
//
//	k2d                               # serve on :8080 with GOMAXPROCS workers
//	k2d -addr :9090 -parallel 4       # explicit bind + worker pool
//	k2d -queue 128 -timeout 2m        # admission bound + default job deadline
//	k2d -cache-size 256               # deterministic result cache (repeat jobs
//	                                  # are served byte-identically; -1 disables)
//	k2d -warm-start=false             # boot every job cold instead of restoring
//	                                  # cached OS checkpoints
//	k2d -fleet http://router:9090     # join a k2fleet as a worker (registers
//	                                  # and heartbeats; see cmd/k2fleet)
//
//	curl -X POST localhost:8080/v1/jobs -d '{"experiment":"t4"}'
//	curl localhost:8080/v1/jobs/j00000001?wait=30\&format=text
//	curl localhost:8080/v1/jobs/j00000001/trace
//	curl localhost:8080/metrics
//
// On SIGTERM/SIGINT the daemon drains gracefully: it stops admitting,
// cancels queued jobs, lets in-flight jobs finish within the grace period
// (cancelling whatever remains after it), then exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"k2/internal/experiment"
	"k2/internal/fleet"
	"k2/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent jobs (worker-pool size)")
	queueDepth := flag.Int("queue", 64, "admission bound: queued jobs beyond this are rejected with 429")
	timeout := flag.Duration("timeout", 5*time.Minute, "default per-job deadline (0 = none; jobs may set timeout_ms)")
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace: how long in-flight jobs may finish after SIGTERM")
	seed := flag.Int64("seed", experiment.FaultSeed, "default PRNG seed for fault-injection jobs")
	traceEvents := flag.Int("trace-events", 16384, "per-job kernel-trace retention bound")
	cacheSize := flag.Int("cache-size", 128, "result-cache entries: repeat jobs are served byte-identically without simulating (negative disables)")
	warmStart := flag.Bool("warm-start", true, "boot jobs by restoring cached OS checkpoints instead of booting cold (results are byte-identical)")
	enginePar := flag.Int("engine-parallel", 1, "default event-scheduler workers per job engine (1 = sequential; results are byte-identical at any value, so it never enters cache or shard keys)")
	fleetURL := flag.String("fleet", "", "k2fleet router base URL to register with as a worker (empty = standalone)")
	advertise := flag.String("advertise", "", "base URL the router should reach this worker at (default http://<addr>)")
	workerID := flag.String("worker-id", "", "stable worker identity on the ring (default derived from the advertise URL)")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "fleet registration heartbeat interval")
	flag.Parse()

	if *parallel < 1 {
		fmt.Fprintln(os.Stderr, "k2d: -parallel must be at least 1")
		os.Exit(2)
	}
	if *queueDepth < 1 {
		fmt.Fprintln(os.Stderr, "k2d: -queue must be at least 1")
		os.Exit(2)
	}
	if *timeout < 0 || *grace < 0 {
		fmt.Fprintln(os.Stderr, "k2d: -timeout and -grace must not be negative")
		os.Exit(2)
	}
	if *enginePar < 1 || *enginePar > 64 {
		fmt.Fprintln(os.Stderr, "k2d: -engine-parallel must be in [1, 64]")
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "k2d: ", log.LstdFlags)
	cache := *cacheSize
	if cache == 0 {
		cache = -1 // flag 0 means "no entries", Config 0 means "default"
	}
	s := server.New(server.Config{
		Parallel:       *parallel,
		QueueDepth:     *queueDepth,
		JobTimeout:     *timeout,
		Seed:           *seed,
		TraceEvents:    *traceEvents,
		CacheSize:      cache,
		WarmStart:      *warmStart,
		EngineParallel: *enginePar,
	})
	s.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	logger.Printf("serving on %s (%d workers, queue %d, %d experiments)",
		ln.Addr(), s.Workers(), *queueDepth, len(experiment.Registry()))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if *fleetURL != "" {
		// Join the fleet: register with the router and keep heartbeating
		// until shutdown. The ring is keyed by worker identity, so a
		// restarted worker with the same -worker-id reclaims its shard.
		adv := *advertise
		if adv == "" {
			adv = "http://" + ln.Addr().String()
		}
		id := *workerID
		if id == "" {
			id = fleet.WorkerID(adv)
		}
		go fleet.Heartbeat(ctx, strings.TrimRight(*fleetURL, "/"), id, adv, *heartbeat, logger.Printf)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		logger.Fatal(err)
	case <-ctx.Done():
	}

	logger.Printf("signal received; draining (grace %v)", *grace)
	drainCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		logger.Printf("drain: %v", err)
	}
	// The job layer is quiesced; now close the listener and let pending
	// responses (result fetches of drained jobs) flush.
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
	logger.Printf("drained; exiting")
}
