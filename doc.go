// Package k2 is a reproduction of "K2: A Mobile Operating System for
// Heterogeneous Coherence Domains" (Lin, Wang, Zhong; ASPLOS 2014) as a
// deterministic simulation written in pure Go.
//
// The paper's prototype runs two refactored Linux kernels over the two cache
// coherence domains of a TI OMAP4 SoC. This repository rebuilds the whole
// stack on a simulated substrate: a discrete-event engine (internal/sim), an
// OMAP4-like SoC model (internal/soc), and on top of it the K2 operating
// system (internal/core) with its shared-most service model — independent
// page allocators coordinated by balloon drivers (internal/mem), a
// sequentially consistent software DSM for shadowed services (internal/dsm),
// shared-interrupt routing (internal/irq), and NightWatch threads
// (internal/sched). Extended services exercised by the paper's evaluation —
// a DMA driver, an ext2-like filesystem and a UDP loopback network stack —
// are implemented in internal/driver, internal/fs and internal/netstack.
//
// See DESIGN.md for the system inventory and the per-experiment index, and
// EXPERIMENTS.md for measured-vs-paper results for every table and figure.
package k2
