// Sensorhub: a continuous context-awareness light task (§2.1) reading a
// real (simulated) sensor device through the shadowed sensor driver, while
// sharing its process with a demanding foreground activity. The NightWatch
// sensing thread is preempted whenever a normal thread of the same process
// runs (§8) and resumes once the foreground blocks — and the sensor's
// shared interrupt is handled by whichever domain §7's rules select, so
// sensing continues with the strong domain asleep.
//
//	go run ./examples/sensorhub
package main

import (
	"fmt"
	"time"

	"k2/internal/core"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

func main() {
	eng := sim.NewEngine()
	os, err := core.Boot(eng, core.Options{
		Mode:         core.K2Mode,
		SensorPeriod: 2 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}

	// App A: camera app with a sensing thread and a bursty UI thread.
	app := os.SpawnProcess("camera")
	var batches int
	var sum int64
	app.Spawn(sched.NightWatch, "sensing", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { os.Ready.Wait(p) })
		for i := 0; i < 250; i++ {
			for _, s := range os.Sensor.ReadBatch(th, 8) {
				sum += int64(s.Value)
			}
			th.Exec(soc.Work(50 * time.Microsecond)) // feature extraction
			batches++
		}
		os.Sensor.Dev.Stop()
	})
	app.Spawn(sched.Normal, "ui", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { os.Ready.Wait(p) })
		for burst := 0; burst < 6; burst++ {
			th.SleepIdle(300 * time.Millisecond)     // user think time
			th.Exec(soc.Work(80 * time.Millisecond)) // render burst
		}
	})

	// App B: an unrelated pedometer; its light task must not be blocked by
	// the camera app's foreground bursts (§4.3).
	other := os.SpawnProcess("pedometer")
	var otherSamples int
	other.Spawn(sched.NightWatch, "steps", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { os.Ready.Wait(p) })
		for i := 0; i < 400; i++ {
			th.Exec(soc.Work(20 * time.Microsecond))
			otherSamples++
			th.SleepIdle(5 * time.Millisecond)
		}
	})

	if err := eng.Run(sim.Time(time.Hour)); err != nil {
		panic(err)
	}
	fmt.Printf("sensor batches processed:    %d (%d samples, mean value %d)\n",
		batches, os.Sensor.Delivered, sum/int64(os.Sensor.Delivered))
	fmt.Printf("pedometer samples:           %d (unaffected by the camera's bursts)\n", otherSamples)
	fmt.Printf("suspend/resume round trips:  %d / %d\n", os.Sched.SuspendsSent, os.Sched.ResumesSent)
	fmt.Printf("sensor FIFO overruns:        %d\n", os.Sensor.Dev.Overruns)
	fmt.Printf("weak-domain energy:          %.2f mJ\n", os.S.Domains[soc.Weak].Rail.EnergyJ()*1e3)
	fmt.Printf("strong-domain energy:        %.2f mJ\n", os.S.Domains[soc.Strong].Rail.EnergyJ()*1e3)
}
