// Memsqueeze: the meta-level memory manager in action (§6.2). A greedy
// allocator on the shadow kernel drives its free pages below the watermark;
// the pressure probe kicks the background worker, which deflates 16 MB page
// blocks from the K2 pool — and once the pool is empty, reclaims blocks
// from the main kernel by asking its balloon to inflate, migrating movable
// pages out of the victim block.
//
//	go run ./examples/memsqueeze
package main

import (
	"fmt"
	"time"

	"k2/internal/core"
	"k2/internal/mem"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

func main() {
	eng := sim.NewEngine()
	os, err := core.Boot(eng, core.Options{
		Mode: core.K2Mode,
		// A small machine: most of the pool is handed out at boot so the
		// squeeze quickly reaches the reclaim path.
		SoC:                 func() *soc.Config { c := soc.DefaultConfig(); c.RAMBytes = 192 << 20; return &c }(),
		InitialMainBlocks:   5,
		InitialShadowBlocks: 1,
	})
	if err != nil {
		panic(err)
	}

	report := func(when string) {
		fmt.Printf("%-22s pool=%d blocks   main=%5d KB free (%5d KB total)   shadow=%5d KB free (%5d KB total)\n",
			when, os.Mem.PoolBlocks(),
			os.Mem.Buddies[soc.Strong].FreePages()*4, os.Mem.Buddies[soc.Strong].TotalPages()*4,
			os.Mem.Buddies[soc.Weak].FreePages()*4, os.Mem.Buddies[soc.Weak].TotalPages()*4)
	}

	hog := os.SpawnProcess("hog")
	hog.Spawn(sched.NightWatch, "alloc", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { os.Ready.Wait(p) })
		report("boot")
		var held []mem.PFN
		b := os.Mem.Buddies[soc.Weak]
		for i := 0; ; i++ {
			pfn, err := b.Alloc(th.P(), th.Core(), 4, mem.Movable) // 64 KB
			if err != nil {
				// Give the background worker a chance before concluding.
				th.SleepIdle(200 * time.Millisecond)
				if pfn, err = b.Alloc(th.P(), th.Core(), 4, mem.Movable); err != nil {
					fmt.Printf("allocation %d finally failed: %v\n", i, err)
					break
				}
			}
			held = append(held, pfn)
			if i%256 == 255 {
				th.SleepIdle(50 * time.Millisecond) // let the worker run
				report(fmt.Sprintf("after %4d x 64KB", i+1))
			}
			if len(held)*16 > 130<<10/4 { // stop near 130 MB held
				break
			}
		}
		report("squeeze done")
		// Release everything; the allocator coalesces back.
		for _, pfn := range held {
			os.Mem.Free(th.P(), th.Core(), soc.Weak, pfn)
		}
		report("after freeing")
	})

	if err := eng.Run(sim.Time(time.Hour)); err != nil {
		panic(err)
	}
	fmt.Printf("\nballoon ops: shadow deflates=%d, reclaims from main=%d, pages migrated=%d\n",
		os.Mem.Balloons[soc.Weak].Deflates, os.Mem.Reclaims, os.Mem.Balloons[soc.Strong].PagesMoved)
	if err := os.Mem.CheckPartition(); err != nil {
		panic(err)
	}
	if err := os.Mem.Buddies[soc.Weak].CheckInvariants(); err != nil {
		panic(err)
	}
	fmt.Println("ownership partition and buddy invariants verified")
}
