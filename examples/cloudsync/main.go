// Cloudsync: the paper's motivating background workload (§2.1) — a mail
// client that periodically fetches messages over the network and persists
// them to the filesystem, entirely as a NightWatch thread, while the strong
// domain stays inactive. A foreground reader later opens the mailbox from a
// normal thread on the main kernel, demonstrating the single system image.
//
//	go run ./examples/cloudsync
package main

import (
	"fmt"
	"time"

	"k2/internal/core"
	"k2/internal/netstack"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

const (
	syncs        = 5
	mailsPerSync = 4
	mailSize     = 8 << 10
	syncPeriod   = 30 * time.Second
)

func main() {
	eng := sim.NewEngine()
	cfg := soc.DefaultConfig()
	cfg.StrongFreqMHz = 350
	os, err := core.Boot(eng, core.Options{Mode: core.K2Mode, SoC: &cfg})
	if err != nil {
		panic(err)
	}

	// The "cloud": a loopback UDP responder living in its own process.
	cloud := os.SpawnProcess("cloud")
	cloud.Spawn(sched.NightWatch, "server", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { os.Ready.Wait(p) })
		srv, err := os.Net.NewSocket(th, 53530)
		if err != nil {
			panic(err)
		}
		body := make([]byte, mailSize)
		for {
			_, from, err := srv.RecvFrom(th)
			if err != nil {
				return
			}
			if _, err := srv.SendTo(th, from, body); err != nil {
				panic(err)
			}
		}
	})

	// The mail app: fetch a few messages per sync, store them with ext2.
	app := os.SpawnProcess("mail")
	var syncEnergy []float64
	app.Spawn(sched.NightWatch, "sync", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { os.Ready.Wait(p) })
		if err := os.FS.Mkdir(th, "/inbox"); err != nil {
			panic(err)
		}
		for s := 0; s < syncs; s++ {
			th.SleepIdle(syncPeriod)
			os.MeterReset()
			sk, err := os.Net.NewSocket(th, 0)
			if err != nil {
				panic(err)
			}
			for m := 0; m < mailsPerSync; m++ {
				if _, err := sk.SendTo(th, netstack.Addr{Port: 53530}, []byte("FETCH")); err != nil {
					panic(err)
				}
				var mail []byte
				for len(mail) < mailSize {
					part, _, err := sk.RecvFrom(th)
					if err != nil {
						panic(err)
					}
					mail = append(mail, part...)
				}
				f, err := os.FS.Create(th, fmt.Sprintf("/inbox/msg-%d-%d", s, m))
				if err != nil {
					panic(err)
				}
				if err := f.Write(th, mail); err != nil {
					panic(err)
				}
				if err := f.Close(th); err != nil {
					panic(err)
				}
			}
			sk.Close(th)
			syncEnergy = append(syncEnergy, os.EnergyJ())
		}

		// Foreground: the user opens the mailbox; a normal thread on the
		// strong domain reads what the weak domain wrote.
		ui := os.SpawnProcess("mail-ui")
		ui.Spawn(sched.Normal, "render", func(tr *sched.Thread) {
			ents, err := os.FS.ReadDir(tr, "/inbox")
			if err != nil {
				panic(err)
			}
			fmt.Printf("foreground (strong domain) sees %d messages in /inbox\n", len(ents))
			f, err := os.FS.Open(tr, "/inbox/msg-0-0")
			if err != nil {
				panic(err)
			}
			fmt.Printf("first message: %d bytes, read back through the single system image\n", f.Size())
		})
	})

	if err := eng.Run(sim.Time(10 * time.Minute)); err != nil {
		panic(err)
	}
	fmt.Printf("\n%d background syncs of %d x %d KB mails:\n", syncs, mailsPerSync, mailSize/1024)
	for i, j := range syncEnergy {
		fmt.Printf("  sync %d: %.2f mJ (sync phase)\n", i+1, j*1e3)
	}
	fmt.Printf("strong-domain wakeups caused by syncing: %d (it slept throughout)\n",
		os.S.Domains[soc.Strong].WakeCount()-1)
}
