// Fileserver: a tiny UDP file service running as a NightWatch thread — the
// whole serving path (socket receive, filesystem read, socket send) executes
// on the weak domain while the strong domain sleeps, yet the files it serves
// were written by a normal thread on the main kernel. One binary, three
// shadowed services, one system image.
//
//	go run ./examples/fileserver
package main

import (
	"fmt"
	"strings"
	"time"

	"k2/internal/core"
	"k2/internal/netstack"
	"k2/internal/sched"
	"k2/internal/sim"
	"k2/internal/soc"
)

const serverPort = 7000

func main() {
	eng := sim.NewEngine()
	cfg := soc.DefaultConfig()
	cfg.StrongFreqMHz = 350
	os, err := core.Boot(eng, core.Options{Mode: core.K2Mode, SoC: &cfg})
	if err != nil {
		panic(err)
	}

	// Publisher: the foreground app (strong domain) drops content files.
	published := sim.NewEvent(eng)
	pub := os.SpawnProcess("publisher")
	pub.Spawn(sched.Normal, "write", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { os.Ready.Wait(p) })
		if err := os.FS.Mkdir(th, "/www"); err != nil {
			panic(err)
		}
		for _, name := range []string{"index", "about", "data"} {
			f, err := os.FS.Create(th, "/www/"+name)
			if err != nil {
				panic(err)
			}
			body := strings.Repeat(name+" ", 300)
			if err := f.Write(th, []byte(body)); err != nil {
				panic(err)
			}
			if err := f.Close(th); err != nil {
				panic(err)
			}
		}
		published.Fire()
	})

	// Server: a background NightWatch thread on the weak domain.
	srvProc := os.SpawnProcess("fileserver")
	var served int
	srvProc.Spawn(sched.NightWatch, "serve", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { published.Wait(p) })
		sk, err := os.Net.NewSocket(th, serverPort)
		if err != nil {
			panic(err)
		}
		for {
			req, from, err := sk.RecvFrom(th)
			if err != nil {
				return
			}
			name := string(req)
			if name == "QUIT" {
				sk.Close(th)
				return
			}
			f, err := os.FS.Open(th, "/www/"+name)
			var body []byte
			if err != nil {
				body = []byte("404 " + name)
			} else {
				body = make([]byte, f.Size())
				if _, err := f.Read(th, body); err != nil {
					panic(err)
				}
			}
			if _, err := sk.SendTo(th, from, body); err != nil {
				panic(err)
			}
			served++
		}
	})

	// Client: another light task fetching documents periodically.
	cli := os.SpawnProcess("client")
	var fetched []string
	cli.Spawn(sched.NightWatch, "fetch", func(th *sched.Thread) {
		th.Block(func(p *sim.Proc) { published.Wait(p) })
		th.SleepIdle(10 * time.Millisecond)
		sk, err := os.Net.NewSocket(th, 0)
		if err != nil {
			panic(err)
		}
		for _, name := range []string{"index", "about", "missing", "data"} {
			if _, err := sk.SendTo(th, netstack.Addr{Port: serverPort}, []byte(name)); err != nil {
				panic(err)
			}
			// Responses fragment at the MTU; a short (non-full) fragment
			// marks the end of the message.
			var body []byte
			for {
				frag, _, err := sk.RecvFrom(th)
				if err != nil {
					panic(err)
				}
				body = append(body, frag...)
				if len(frag) < netstack.MTU {
					break
				}
			}
			fetched = append(fetched, fmt.Sprintf("%s: %d bytes (%.12q...)", name, len(body), body))
			th.SleepIdle(30 * time.Second) // strong domain sleeps between fetches
		}
		if _, err := sk.SendTo(th, netstack.Addr{Port: serverPort}, []byte("QUIT")); err != nil {
			panic(err)
		}
		sk.Close(th)
	})

	if err := eng.Run(sim.Time(time.Hour)); err != nil {
		panic(err)
	}
	for _, l := range fetched {
		fmt.Println(l)
	}
	fmt.Printf("requests served on the weak domain: %d\n", served)
	fmt.Printf("strong-domain wakeups after publishing: %d (it slept through the serving)\n",
		os.S.Domains[soc.Strong].WakeCount())
	fmt.Printf("energy: strong %.1f mJ, weak %.1f mJ\n",
		os.S.Domains[soc.Strong].Rail.EnergyJ()*1e3, os.S.Domains[soc.Weak].Rail.EnergyJ()*1e3)
}
