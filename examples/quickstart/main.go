// Quickstart: boot K2 on the simulated OMAP4, run one light task as a
// NightWatch thread, and compare the episode's energy with the unmodified
// Linux baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"k2/internal/core"
	"k2/internal/sim"
	"k2/internal/soc"
	"k2/internal/workload"
)

func episode(mode core.Mode) workload.Result {
	eng := sim.NewEngine()
	cfg := soc.DefaultConfig()
	cfg.StrongFreqMHz = 350 // the strong core's most efficient point (§9.2)
	os, err := core.Boot(eng, core.Options{Mode: mode, SoC: &cfg})
	if err != nil {
		panic(err)
	}
	// The light task: a background sync writing 8 small files, K2's bread
	// and butter. Under K2 it runs as a NightWatch thread on the weak
	// domain; under the baseline the same code runs on the strong domain.
	task := workload.Ext2(os, 32<<10, 8)
	res, err := workload.MeasureEpisode(eng, os, task)
	if err != nil {
		panic(err)
	}
	return res
}

func main() {
	fmt.Println("K2 quickstart: one background-sync episode on each OS")
	fmt.Println()
	k2 := episode(core.K2Mode)
	linux := episode(core.LinuxMode)
	show := func(name string, r workload.Result) {
		fmt.Printf("%-6s  wrote %6d KB in %8v   energy %7.2f mJ   efficiency %6.2f MB/J   strong-domain wakes: %d\n",
			name, r.Bytes/1024, r.WorkSpan, r.EnergyJ*1e3, r.EfficiencyMBJ(), r.StrongWakes)
	}
	show("K2", k2)
	show("Linux", linux)
	fmt.Printf("\nK2 is %.1fx more energy efficient for this light task.\n",
		k2.EfficiencyMBJ()/linux.EfficiencyMBJ())
	fmt.Println("(the strong domain slept through the whole K2 episode; Linux had to wake it)")
}
